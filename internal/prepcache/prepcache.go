// Package prepcache is the prepared-statement subsystem of the query
// service — an extension beyond the paper's single-shot experiments,
// motivated by its central finding that neither paradigm dominates:
// compiled (Typer) execution wins computation-heavy queries while
// vectorized (Tectorwise) execution wins join/probe-heavy ones, so a
// server that re-plans every SQL text and pins it to one engine leaves
// both optimization cost and the engine choice on the table. The
// package supplies the three pieces that exploit this at serving time:
//
//   - Statement: one prepared SQL text — parsed, bound, and optimized
//     once into a parameterized logical plan (internal/logical), then
//     executed with per-call argument bindings on either backend.
//   - Cache: a bounded LRU over Statements, keyed on the normalized
//     SQL text plus the catalog version, with hit/miss/eviction
//     counters surfaced through the service stats. A cache hit skips
//     parse, bind, and plan entirely.
//   - Router: a per-statement adaptive engine picker. Each execution's
//     latency feeds a per-engine EWMA; engine "auto" routes to the
//     empirically faster backend, with a deterministic epsilon-greedy
//     probe of the slower arm so a shift in relative performance is
//     always discovered.
package prepcache

import (
	"container/list"
	"strings"
	"sync"

	"paradigms/internal/catalog"
	"paradigms/internal/logical"
)

// DefaultCapacity is the plan-cache capacity when none is configured.
const DefaultCapacity = 128

// Key identifies one cached statement: the schema instance it was
// planned against and its normalized SQL spelling.
type Key struct {
	Catalog uint64
	SQL     string
}

// entry is one cache slot. The plan is built outside the cache lock,
// behind a per-entry Once, so a miss never serializes other lookups
// and concurrent first-preparers of the same text build only once.
type entry struct {
	once sync.Once
	stmt *Statement
	err  error
	elem *list.Element // position in the LRU list; nil once evicted
}

// Cache is a bounded LRU plan cache. All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*entry
	lru     *list.List // front = most recently used; values are Key

	hits, misses, evictions uint64
}

// New creates a cache holding at most capacity statements
// (capacity <= 0 selects DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{cap: capacity, entries: make(map[Key]*entry), lru: list.New()}
}

// GetOrPrepare returns the cached statement for the text under cat's
// schema, building it with build on a miss. The returned bool reports
// a cache hit. A failed build is not cached: the entry is removed so a
// later (possibly corrected) attempt re-prepares, and every waiter of
// the failed build observes the same error.
func (c *Cache) GetOrPrepare(cat *catalog.Catalog, text string, build func() (*logical.Plan, error)) (*Statement, bool, error) {
	key := Key{Catalog: cat.Version, SQL: Normalize(text)}

	c.mu.Lock()
	e, hit := c.entries[key]
	if hit {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
	} else {
		c.misses++
		e = &entry{}
		e.elem = c.lru.PushFront(key)
		c.entries[key] = e
		for c.lru.Len() > c.cap {
			back := c.lru.Back()
			victim := back.Value.(Key)
			c.lru.Remove(back)
			if ve := c.entries[victim]; ve != nil {
				ve.elem = nil
			}
			delete(c.entries, victim)
			c.evictions++
		}
	}
	c.mu.Unlock()

	e.once.Do(func() {
		pl, err := build()
		if err != nil {
			e.err = err
			return
		}
		e.stmt = NewStatement(key.SQL, pl)
	})
	if e.err != nil {
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == e {
			if e.elem != nil {
				c.lru.Remove(e.elem)
				e.elem = nil
			}
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, hit, e.err
	}
	return e.stmt, hit, nil
}

// Stats reports the cache counters and current occupancy.
func (c *Cache) Stats() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, len(c.entries)
}

// Normalize canonicalizes a SQL text for cache keying: whitespace runs
// collapse to one space, letters outside string literals fold to lower
// case, line comments drop, and a trailing semicolon is stripped —
// while quoted strings (which are case- and space-significant data)
// pass through verbatim. Two spellings that normalize equally plan
// identically, so they may share one cache slot.
func Normalize(text string) string {
	var sb strings.Builder
	sb.Grow(len(text))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if inStr {
			sb.WriteByte(c)
			if c == '\'' {
				// '' is the lexer's escaped quote, not the end of the
				// literal; consume both so the scanner stays in sync.
				if i+1 < len(text) && text[i+1] == '\'' {
					sb.WriteByte('\'')
					i++
					continue
				}
				inStr = false
			}
			continue
		}
		switch {
		case c == '\'':
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			inStr = true
			sb.WriteByte(c)
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			pendingSpace = true
		case c == '-' && i+1 < len(text) && text[i+1] == '-':
			for i < len(text) && text[i] != '\n' {
				i++
			}
			pendingSpace = true
		default:
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			sb.WriteByte(c)
		}
	}
	out := sb.String()
	out = strings.TrimSuffix(out, ";")
	return strings.TrimSuffix(out, " ")
}
