package prepcache

import (
	"context"
	"fmt"
	"time"

	"paradigms/internal/catalog"
	"paradigms/internal/compiled"
	"paradigms/internal/hybrid"
	"paradigms/internal/logical"
	"paradigms/internal/registry"
)

// Statement is one prepared SQL text: the optimized parameterized plan
// plus the statement's adaptive engine router. The plan is an immutable
// template — Execute binds arguments into a copy-on-write clone — so a
// Statement is safe for concurrent execution from many clients.
type Statement struct {
	// Text is the normalized SQL the statement was prepared from.
	Text string
	// Plan is the optimized parameterized logical plan, shared by both
	// lowering backends.
	Plan *logical.Plan

	router     Router
	pipeRouter PipelineRouter
}

// NewStatement wraps an optimized plan as a prepared statement.
func NewStatement(text string, pl *logical.Plan) *Statement {
	return &Statement{Text: text, Plan: pl}
}

// NumParams is the number of `?` placeholders.
func (s *Statement) NumParams() int { return len(s.Plan.Params) }

// ParamTypes lists the bound type of each placeholder in order.
func (s *Statement) ParamTypes() []catalog.Type { return s.Plan.Params }

// Router exposes the statement's adaptive engine router.
func (s *Statement) Router() *Router { return &s.router }

// PipeRouter exposes the statement's per-pipeline router — the hybrid
// engine's arm-level counterpart of Router.
func (s *Statement) PipeRouter() *PipelineRouter { return &s.pipeRouter }

// BindTexts parses one argument text per placeholder into the raw
// values Execute takes (see logical.(*Plan).BindTexts).
func (s *Statement) BindTexts(args []string) ([]int64, error) {
	return s.Plan.BindTexts(args)
}

// Execute runs the statement with one argument binding on the given
// engine — registry.Typer (compiled fused pipelines), registry.
// Tectorwise (vectorized operator plans), registry.Hybrid (per-pipeline
// mix of the two, routed by the statement's PipelineRouter), or Auto,
// which resolves to whichever backend the statement's router currently
// measures as faster. It returns the result and the engine that
// actually ran — for hybrid, decorated with the pipeline assignment
// ("hybrid[t,v]"). Every successful execution's latency feeds the
// router, whichever way the engine was chosen, so explicit-engine
// traffic trains Auto too.
func (s *Statement) Execute(ctx context.Context, engine string, args []int64, workers, vecSize int) (*logical.Result, string, error) {
	used := engine
	if engine == Auto {
		used = s.router.Pick()
	}
	start := time.Now()
	var (
		res *logical.Result
		err error
	)
	switch used {
	case registry.Typer:
		res, err = compiled.ExecuteArgs(ctx, s.Plan, workers, args)
	case registry.Tectorwise:
		res, err = s.Plan.ExecuteArgs(ctx, workers, vecSize, args)
	case registry.Hybrid:
		var rep *hybrid.Report
		res, rep, err = hybrid.ExecuteArgsRouted(ctx, s.Plan, workers, vecSize, &s.pipeRouter, args)
		if err == nil && rep != nil {
			used = registry.Hybrid + rep.Suffix()
		}
	default:
		return nil, used, fmt.Errorf("prepcache: unknown engine %q (%s | %s | %s | %s)",
			engine, registry.Typer, registry.Tectorwise, registry.Hybrid, Auto)
	}
	if err != nil {
		// A live-context failure is the engine's fault: penalize the
		// arm so auto routing falls through to the other backend
		// rather than pinning to a broken one. A canceled context says
		// nothing about the engine — observe nothing.
		if ctx.Err() == nil {
			s.router.ObserveFailure(used)
		}
		return nil, used, err
	}
	if err := ctx.Err(); err != nil {
		return nil, used, err
	}
	s.router.Observe(used, time.Since(start))
	return res, used, nil
}

// ExecuteStream is Execute streaming result batches to sink instead of
// materializing (see logical.(*Plan).ExecuteStream for the streaming
// contract). Auto resolves through the statement's router, and
// successful streamed executions train it exactly like materialized
// ones.
func (s *Statement) ExecuteStream(ctx context.Context, engine string, args []int64, workers, vecSize, chunk int, sink logical.RowSink) (string, error) {
	used := engine
	if engine == Auto {
		used = s.router.Pick()
	}
	start := time.Now()
	var err error
	switch used {
	case registry.Typer:
		err = compiled.ExecuteArgsStream(ctx, s.Plan, workers, chunk, args, sink)
	case registry.Tectorwise:
		err = s.Plan.ExecuteArgsStream(ctx, workers, vecSize, chunk, args, sink)
	case registry.Hybrid:
		// Streaming materializes and chunks (the hybrid executor has no
		// incremental path), but routes and decorates exactly like the
		// materializing path: the statement's PipelineRouter assigns and
		// learns, and the end frame reports "hybrid[t,v,...]".
		var rep *hybrid.Report
		rep, err = hybrid.ExecuteArgsStreamRouted(ctx, s.Plan, workers, vecSize, chunk, &s.pipeRouter, args, sink)
		if err == nil && rep != nil {
			used = registry.Hybrid + rep.Suffix()
		}
	default:
		return used, fmt.Errorf("prepcache: unknown engine %q (%s | %s | %s | %s)",
			engine, registry.Typer, registry.Tectorwise, registry.Hybrid, Auto)
	}
	if err != nil {
		if ctx.Err() == nil {
			s.router.ObserveFailure(used)
		}
		return used, err
	}
	if err := ctx.Err(); err != nil {
		return used, err
	}
	s.router.Observe(used, time.Since(start))
	return used, nil
}
