package prepcache

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"paradigms/internal/catalog"
	"paradigms/internal/compiled"
	"paradigms/internal/feedback"
	"paradigms/internal/hybrid"
	"paradigms/internal/logical"
	"paradigms/internal/obs"
	"paradigms/internal/registry"
)

// Statement is one prepared SQL text: the optimized parameterized plan
// plus the statement's adaptive engine router. The plan is an immutable
// template — Execute binds arguments into a copy-on-write clone — so a
// Statement is safe for concurrent execution from many clients. With
// cardinality feedback enabled the plan pointer itself can advance (an
// atomic swap to a re-planned template when observed cardinalities
// drift from the estimates); in-flight executions finish on the plan
// they loaded.
type Statement struct {
	// Text is the normalized SQL the statement was prepared from.
	Text string

	plan    atomic.Pointer[logical.Plan]
	fb      atomic.Pointer[fbState]
	replans atomic.Uint64

	router     Router
	pipeRouter PipelineRouter
}

// fbState is the statement's feedback wiring: where observations
// accumulate, which catalog version keys them, and how to rebuild the
// plan from hints.
type fbState struct {
	store   *feedback.Store
	catalog uint64
	replan  func(logical.CardHints) (*logical.Plan, error)
}

// NewStatement wraps an optimized plan as a prepared statement.
func NewStatement(text string, pl *logical.Plan) *Statement {
	s := &Statement{Text: text}
	s.plan.Store(pl)
	return s
}

// Plan returns the statement's current optimized plan template. With
// feedback enabled this advances across re-plans; callers snapshot it
// once per use.
func (s *Statement) Plan() *logical.Plan { return s.plan.Load() }

// EnableFeedback arms the statement's cardinality-feedback loop:
// successful executions record their per-pipeline observed
// cardinalities into store under (Text, catalogVersion, plan shape),
// and when the store reports sustained drift the statement rebuilds its
// plan through replan with the observed selectivities as hints,
// swapping the template in place. The first call wins; later calls are
// no-ops (the cache hands one Statement to many clients).
func (s *Statement) EnableFeedback(store *feedback.Store, catalogVersion uint64, replan func(logical.CardHints) (*logical.Plan, error)) {
	if store == nil {
		return
	}
	s.fb.CompareAndSwap(nil, &fbState{store: store, catalog: catalogVersion, replan: replan})
}

// Replans reports how many times feedback has swapped the plan.
func (s *Statement) Replans() uint64 { return s.replans.Load() }

// NumParams is the number of `?` placeholders.
func (s *Statement) NumParams() int { return len(s.Plan().Params) }

// ParamTypes lists the bound type of each placeholder in order.
func (s *Statement) ParamTypes() []catalog.Type { return s.Plan().Params }

// Router exposes the statement's adaptive engine router.
func (s *Statement) Router() *Router { return &s.router }

// PipeRouter exposes the statement's per-pipeline router — the hybrid
// engine's arm-level counterpart of Router.
func (s *Statement) PipeRouter() *PipelineRouter { return &s.pipeRouter }

// BindTexts parses one argument text per placeholder into the raw
// values Execute takes (see logical.(*Plan).BindTexts).
func (s *Statement) BindTexts(args []string) ([]int64, error) {
	return s.Plan().BindTexts(args)
}

// observeCtx returns the context to execute under and the collector
// feedback should read. With feedback armed, an uninstrumented context
// gets the statement's own collector attached — the engines populate
// whatever collector rides the context, so feedback sees per-pipeline
// telemetry whether or not the caller asked for EXPLAIN ANALYZE.
func (s *Statement) observeCtx(ctx context.Context) (context.Context, *obs.Collector) {
	if s.fb.Load() == nil {
		return ctx, nil
	}
	if col := obs.FromContext(ctx); col != nil {
		return ctx, col
	}
	col := obs.NewCollector()
	return obs.WithCollector(ctx, col), col
}

// observeFeedback folds one successful execution's telemetry into the
// feedback store and, when drift has been sustained, re-plans with the
// observed selectivities and swaps the statement's template. The swap
// changes the plan's pipeline shape, which both re-keys subsequent
// feedback (the re-planned statement accumulates fresh state, now with
// estimates that match observations) and makes the PipelineRouter
// restart from its heuristic seed on the next hybrid decision.
func (s *Statement) observeFeedback(pl *logical.Plan, col *obs.Collector) {
	fb := s.fb.Load()
	if fb == nil || col == nil {
		return
	}
	pipes := col.Pipes()
	if len(pipes) == 0 {
		return
	}
	key := feedback.Key{SQL: s.Text, Catalog: fb.catalog, Shape: obs.ShapeHash(pipes)}
	if !fb.store.Record(key, pipes) {
		return
	}
	hints := fb.store.Hints(key)
	if len(hints) == 0 || fb.replan == nil {
		return
	}
	np, err := fb.replan(hints)
	if err != nil || np == nil {
		return
	}
	if np.Format() == pl.Format() {
		// The observed cardinalities do not change the join order:
		// keep the current template (and its trained routers).
		return
	}
	if s.plan.CompareAndSwap(pl, np) {
		s.replans.Add(1)
	}
}

// Execute runs the statement with one argument binding on the given
// engine — registry.Typer (compiled fused pipelines), registry.
// Tectorwise (vectorized operator plans), registry.Hybrid (per-pipeline
// mix of the two, routed by the statement's PipelineRouter), or Auto,
// which resolves to whichever backend the statement's router currently
// measures as faster. It returns the result and the engine that
// actually ran — for hybrid, decorated with the pipeline assignment
// ("hybrid[t,v]"). Every successful execution's latency feeds the
// router, whichever way the engine was chosen, so explicit-engine
// traffic trains Auto too.
func (s *Statement) Execute(ctx context.Context, engine string, args []int64, workers, vecSize int) (*logical.Result, string, error) {
	pl := s.plan.Load()
	used := engine
	if engine == Auto {
		used = s.router.Pick()
	}
	ctx, col := s.observeCtx(ctx)
	start := time.Now()
	var (
		res *logical.Result
		err error
	)
	switch used {
	case registry.Typer:
		res, err = compiled.ExecuteArgs(ctx, pl, workers, args)
	case registry.Tectorwise:
		res, err = pl.ExecuteArgs(ctx, workers, vecSize, args)
	case registry.Hybrid:
		var rep *hybrid.Report
		res, rep, err = hybrid.ExecuteArgsRouted(ctx, pl, workers, vecSize, &s.pipeRouter, args)
		if err == nil && rep != nil {
			used = registry.Hybrid + rep.Suffix()
		}
	default:
		return nil, used, fmt.Errorf("prepcache: unknown engine %q (%s | %s | %s | %s)",
			engine, registry.Typer, registry.Tectorwise, registry.Hybrid, Auto)
	}
	if err != nil {
		// A live-context failure is the engine's fault: penalize the
		// arm so auto routing falls through to the other backend
		// rather than pinning to a broken one. A canceled context says
		// nothing about the engine — observe nothing.
		if ctx.Err() == nil {
			s.router.ObserveFailure(used)
		}
		return nil, used, err
	}
	if err := ctx.Err(); err != nil {
		return nil, used, err
	}
	s.router.Observe(used, time.Since(start))
	s.observeFeedback(pl, col)
	return res, used, nil
}

// ExecuteStream is Execute streaming result batches to sink instead of
// materializing (see logical.(*Plan).ExecuteStream for the streaming
// contract). Auto resolves through the statement's router, and
// successful streamed executions train it exactly like materialized
// ones.
func (s *Statement) ExecuteStream(ctx context.Context, engine string, args []int64, workers, vecSize, chunk int, sink logical.RowSink) (string, error) {
	pl := s.plan.Load()
	used := engine
	if engine == Auto {
		used = s.router.Pick()
	}
	ctx, col := s.observeCtx(ctx)
	start := time.Now()
	var err error
	switch used {
	case registry.Typer:
		err = compiled.ExecuteArgsStream(ctx, pl, workers, chunk, args, sink)
	case registry.Tectorwise:
		err = pl.ExecuteArgsStream(ctx, workers, vecSize, chunk, args, sink)
	case registry.Hybrid:
		// Streaming materializes and chunks (the hybrid executor has no
		// incremental path), but routes and decorates exactly like the
		// materializing path: the statement's PipelineRouter assigns and
		// learns, and the end frame reports "hybrid[t,v,...]".
		var rep *hybrid.Report
		rep, err = hybrid.ExecuteArgsStreamRouted(ctx, pl, workers, vecSize, chunk, &s.pipeRouter, args, sink)
		if err == nil && rep != nil {
			used = registry.Hybrid + rep.Suffix()
		}
	default:
		return used, fmt.Errorf("prepcache: unknown engine %q (%s | %s | %s | %s)",
			engine, registry.Typer, registry.Tectorwise, registry.Hybrid, Auto)
	}
	if err != nil {
		if ctx.Err() == nil {
			s.router.ObserveFailure(used)
		}
		return used, err
	}
	if err := ctx.Err(); err != nil {
		return used, err
	}
	s.router.Observe(used, time.Since(start))
	s.observeFeedback(pl, col)
	return used, nil
}
