package prepcache

import (
	"strings"
	"sync"
	"time"

	"paradigms/internal/registry"
)

// Auto is the pseudo-engine of adaptive routing: each execution of the
// statement goes to whichever backend its Router currently believes is
// faster.
const Auto = "auto"

// ProbeEvery sets the router's exploration rate: every ProbeEvery-th
// pick routes to a currently-losing arm instead of the fastest one
// (a deterministic epsilon-greedy schedule with ε = 1/ProbeEvery),
// rotating over the losing arms so none is starved. If the workload
// shifts and a losing engine becomes the fastest, its EWMA keeps being
// refreshed and the router flips within a handful of probes.
const ProbeEvery = 8

// ewmaAlpha is the weight of the newest observation.
const ewmaAlpha = 0.25

// failurePenaltyFloor is the minimum latency a failed execution feeds
// into the arm's EWMA. The actual penalty scales with the workload:
// failurePenaltyFactor times the slowest *other* observed arm's EWMA,
// floored here — a fixed 1s penalty would make a persistently failing
// engine rank *faster* than working ones on statements whose healthy
// latency exceeds 1s, converging auto-routing onto the broken arm.
const failurePenaltyFloor = time.Second

// failurePenaltyFactor scales the worst healthy arm's EWMA into the
// failure penalty, so a failed arm always loses the best-arm
// comparison by a wide margin yet heals within a few probes once it
// recovers.
const failurePenaltyFactor = 4

// numArms is the arm count of the statement router.
const numArms = 3

// Router picks the execution engine for one cached statement from
// observed latencies. The arms are fixed: the paper's two paradigms
// plus the per-pipeline hybrid of the two. All methods are safe for
// concurrent use; picks are deterministic given the observation
// sequence (no random source), which is what the convergence tests
// pin.
type Router struct {
	mu    sync.Mutex
	n     [numArms]uint64  // observations per arm
	ewma  [numArms]float64 // latency EWMA per arm, in nanoseconds
	picks uint64
}

// engineArms maps router arm indexes to engine names.
var engineArms = [numArms]string{registry.Typer, registry.Tectorwise, registry.Hybrid}

// BaseEngine strips the hybrid assignment decoration from an engine
// name ("hybrid[t,v]" → "hybrid"; undecorated names pass through).
// This is the one strip implementation: the router, the server's
// per-engine stats attribution, and the metrics layer all resolve
// decorated names through it, so the decoration grammar cannot drift
// between consumers.
func BaseEngine(engine string) string {
	if i := strings.IndexByte(engine, '['); i >= 0 {
		return engine[:i]
	}
	return engine
}

// armOf resolves an engine name to its arm, ignoring a hybrid
// assignment decoration ("hybrid[t,v]" observes as "hybrid").
func armOf(engine string) int {
	engine = BaseEngine(engine)
	for i, name := range engineArms {
		if name == engine {
			return i
		}
	}
	return -1
}

// Pick returns the engine the next execution should run on: an
// untried arm first (each backend is measured at least once), then the
// lowest-EWMA arm, except that every ProbeEvery-th pick rotates over
// the other arms to keep their estimates fresh.
func (r *Router) Pick() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.picks++
	for i := range engineArms {
		if r.n[i] == 0 {
			return engineArms[i]
		}
	}
	best := r.bestLocked()
	if r.picks%ProbeEvery == 0 {
		k := int(r.picks/ProbeEvery) % (numArms - 1)
		for i := range engineArms {
			if i == best {
				continue
			}
			if k == 0 {
				return engineArms[i]
			}
			k--
		}
	}
	return engineArms[best]
}

// bestLocked is the lowest-EWMA arm index. Caller holds mu.
func (r *Router) bestLocked() int {
	best := 0
	for i := 1; i < numArms; i++ {
		if r.ewma[i] < r.ewma[best] {
			best = i
		}
	}
	return best
}

// Observe feeds one successful execution's latency back into the
// engine's EWMA. Unknown engine names (future backends) are ignored;
// hybrid assignment decorations are stripped.
func (r *Router) Observe(engine string, d time.Duration) {
	i := armOf(engine)
	if i < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n[i] == 0 {
		r.ewma[i] = float64(d)
	} else {
		r.ewma[i] = (1-ewmaAlpha)*r.ewma[i] + ewmaAlpha*float64(d)
	}
	r.n[i]++
}

// ObserveFailure records one failed execution as a penalty
// observation, so the arm counts as tried (Pick's try-each-arm-first
// phase must not return a persistently failing backend forever) and
// loses the best-arm comparison until it recovers. The penalty is
// failurePenaltyFactor times the slowest other observed arm's EWMA
// (floor failurePenaltyFloor), so it dominates healthy latencies of
// any magnitude; the failing arm's own EWMA is excluded so repeated
// failures saturate at the penalty instead of compounding without
// bound. Cancellations are the caller's to filter out — they say
// nothing about the engine.
func (r *Router) ObserveFailure(engine string) {
	i := armOf(engine)
	if i < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	penalty := float64(failurePenaltyFloor)
	for j := range r.ewma {
		if j != i && r.n[j] > 0 && failurePenaltyFactor*r.ewma[j] > penalty {
			penalty = failurePenaltyFactor * r.ewma[j]
		}
	}
	if r.n[i] == 0 {
		r.ewma[i] = penalty
	} else {
		r.ewma[i] = (1-ewmaAlpha)*r.ewma[i] + ewmaAlpha*penalty
	}
	r.n[i]++
}

// ArmStats is one engine's routing state.
type ArmStats struct {
	Engine string
	N      uint64
	Ewma   time.Duration
}

// Snapshot reports the per-arm observation counts and latency
// estimates (sqlsh's \prepare listing, tests).
func (r *Router) Snapshot() []ArmStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ArmStats, len(engineArms))
	for i, name := range engineArms {
		out[i] = ArmStats{Engine: name, N: r.n[i], Ewma: time.Duration(r.ewma[i])}
	}
	return out
}

// Best returns the currently preferred engine ("" until every arm has
// been observed).
func (r *Router) Best() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range engineArms {
		if r.n[i] == 0 {
			return ""
		}
	}
	return engineArms[r.bestLocked()]
}
