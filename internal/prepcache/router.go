package prepcache

import (
	"sync"
	"time"

	"paradigms/internal/registry"
)

// Auto is the pseudo-engine of adaptive routing: each execution of the
// statement goes to whichever backend its Router currently believes is
// faster.
const Auto = "auto"

// ProbeEvery sets the router's exploration rate: every ProbeEvery-th
// pick routes to the currently slower arm instead of the faster one
// (a deterministic epsilon-greedy schedule with ε = 1/ProbeEvery).
// The probe arm is therefore never starved — if the workload shifts
// and the losing engine becomes the faster one, its EWMA keeps being
// refreshed and the router flips within a handful of probes.
const ProbeEvery = 8

// ewmaAlpha is the weight of the newest observation.
const ewmaAlpha = 0.25

// failurePenalty is the latency a failed execution feeds into the
// arm's EWMA — far above any healthy execution, so auto routing falls
// through to the other backend instead of retrying a broken one
// forever, while the epsilon probe keeps re-checking it (a recovered
// backend heals within a few probes).
const failurePenalty = time.Second

// Router picks the execution engine for one cached statement from
// observed latencies. Both arms are fixed — the paper's two paradigms.
// All methods are safe for concurrent use; picks are deterministic
// given the observation sequence (no random source), which is what the
// convergence tests pin.
type Router struct {
	mu    sync.Mutex
	n     [2]uint64  // observations per arm
	ewma  [2]float64 // latency EWMA per arm, in nanoseconds
	picks uint64
}

// engineArms maps router arm indexes to engine names.
var engineArms = [2]string{registry.Typer, registry.Tectorwise}

func armOf(engine string) int {
	for i, name := range engineArms {
		if name == engine {
			return i
		}
	}
	return -1
}

// Pick returns the engine the next execution should run on: an
// untried arm first (each backend is measured at least once), then the
// lower-EWMA arm, except that every ProbeEvery-th pick goes to the
// other arm to keep its estimate fresh.
func (r *Router) Pick() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.picks++
	for i := range engineArms {
		if r.n[i] == 0 {
			return engineArms[i]
		}
	}
	best := 0
	if r.ewma[1] < r.ewma[0] {
		best = 1
	}
	if r.picks%ProbeEvery == 0 {
		return engineArms[1-best]
	}
	return engineArms[best]
}

// Observe feeds one successful execution's latency back into the
// engine's EWMA. Unknown engine names (future backends) are ignored.
func (r *Router) Observe(engine string, d time.Duration) {
	i := armOf(engine)
	if i < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n[i] == 0 {
		r.ewma[i] = float64(d)
	} else {
		r.ewma[i] = (1-ewmaAlpha)*r.ewma[i] + ewmaAlpha*float64(d)
	}
	r.n[i]++
}

// ObserveFailure records one failed execution as a failurePenalty
// observation, so the arm counts as tried (Pick's try-each-arm-first
// phase must not return a persistently failing backend forever) and
// loses the best-arm comparison until it recovers. Cancellations are
// the caller's to filter out — they say nothing about the engine.
func (r *Router) ObserveFailure(engine string) {
	r.Observe(engine, failurePenalty)
}

// ArmStats is one engine's routing state.
type ArmStats struct {
	Engine string
	N      uint64
	Ewma   time.Duration
}

// Snapshot reports the per-arm observation counts and latency
// estimates (sqlsh's \prepare listing, tests).
func (r *Router) Snapshot() []ArmStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ArmStats, len(engineArms))
	for i, name := range engineArms {
		out[i] = ArmStats{Engine: name, N: r.n[i], Ewma: time.Duration(r.ewma[i])}
	}
	return out
}

// Best returns the currently preferred engine ("" until both arms have
// been observed).
func (r *Router) Best() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n[0] == 0 || r.n[1] == 0 {
		return ""
	}
	if r.ewma[1] < r.ewma[0] {
		return engineArms[1]
	}
	return engineArms[0]
}
