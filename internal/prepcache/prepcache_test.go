package prepcache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/registry"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/storage"
)

// TestNormalize: whitespace collapses, case folds, comments drop —
// but string literals pass through verbatim.
func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"select 1", "select 1"},
		{"SELECT   1 ;", "select 1"},
		{"select\n\t1\n;", "select 1"},
		{"select x -- comment\nfrom t", "select x from t"},
		{"SELECT 'UPPER  CASE' FROM T", "select 'UPPER  CASE' from t"},
		{"select c from t where s = 'a;b'", "select c from t where s = 'a;b'"},
		{"  select  1  ", "select 1"},
		// '' is an escaped quote: the scanner must not leave the string
		// there, or the trailing data would case-fold and collide
		// distinct statements onto one cache key.
		{"SELECT C FROM T WHERE S = 'it''s  OK'", "select c from t where s = 'it''s  OK'"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if Normalize("SELECT 1  FROM  t") != Normalize("select 1 from t;") {
		t.Error("equivalent spellings normalize differently")
	}
}

func miniCat(t *testing.T) (*storage.Database, func(string) func() (*logical.Plan, error)) {
	t.Helper()
	db := sqlcheck.MiniTPCH(20, true)
	build := func(text string) func() (*logical.Plan, error) {
		return func() (*logical.Plan, error) { return logical.Prepare(db, text) }
	}
	return db, build
}

// TestCacheLRUAndCounters: hits, misses, LRU eviction order, and the
// freshening effect of a hit.
func TestCacheLRUAndCounters(t *testing.T) {
	db, build := miniCat(t)
	cat := logical.CatalogFor(db)
	c := New(2)

	q := func(i int) string { return fmt.Sprintf("select count(*) from orders where o_custkey < %d", i) }

	if _, hit, err := c.GetOrPrepare(cat, q(1), build(q(1))); err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	if _, hit, _ := c.GetOrPrepare(cat, q(1), build(q(1))); !hit {
		t.Fatal("second lookup of same text missed")
	}
	// Different spelling, same normalized text: still a hit.
	if _, hit, _ := c.GetOrPrepare(cat, "SELECT COUNT(*)  FROM orders WHERE o_custkey < 1;", build(q(1))); !hit {
		t.Fatal("normalized-equal spelling missed")
	}

	c.GetOrPrepare(cat, q(2), build(q(2))) // cache now [q2 q1]
	c.GetOrPrepare(cat, q(1), build(q(1))) // freshen q1 → [q1 q2]
	c.GetOrPrepare(cat, q(3), build(q(3))) // evicts q2 → [q3 q1]

	if _, hit, _ := c.GetOrPrepare(cat, q(1), build(q(1))); !hit {
		t.Fatal("freshened entry was evicted (LRU order wrong)")
	}
	if _, hit, _ := c.GetOrPrepare(cat, q(2), build(q(2))); hit {
		t.Fatal("LRU victim still cached")
	}

	hits, misses, evictions, size := c.Stats()
	if hits != 4 {
		t.Errorf("hits = %d, want 4", hits)
	}
	if misses != 4 { // q1, q2, q3, and the re-prepare of evicted q2
		t.Errorf("misses = %d, want 4", misses)
	}
	if hits+misses != 8 {
		t.Errorf("hits+misses = %d, want 8 lookups", hits+misses)
	}
	if evictions == 0 {
		t.Error("no evictions recorded despite capacity overflow")
	}
	if size > 2 {
		t.Errorf("cache size %d exceeds capacity 2", size)
	}
}

// TestCacheKeyIncludesCatalogVersion: the same SQL against two
// database instances occupies two slots.
func TestCacheKeyIncludesCatalogVersion(t *testing.T) {
	db1 := sqlcheck.MiniTPCH(20, true)
	db2 := sqlcheck.MiniTPCH(20, true)
	c := New(8)
	const q = "select count(*) from orders"
	if _, hit, err := c.GetOrPrepare(logical.CatalogFor(db1), q,
		func() (*logical.Plan, error) { return logical.Prepare(db1, q) }); err != nil || hit {
		t.Fatalf("db1: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.GetOrPrepare(logical.CatalogFor(db2), q,
		func() (*logical.Plan, error) { return logical.Prepare(db2, q) }); err != nil || hit {
		t.Fatalf("db2 must miss (different catalog version): hit=%v err=%v", hit, err)
	}
}

// TestCacheErrorsNotCached: a statement that fails to prepare is
// rebuilt on the next lookup rather than serving a stale error.
func TestCacheErrorsNotCached(t *testing.T) {
	db, _ := miniCat(t)
	cat := logical.CatalogFor(db)
	c := New(4)
	boom := errors.New("boom")
	calls := 0
	build := func() (*logical.Plan, error) { calls++; return nil, boom }
	if _, _, err := c.GetOrPrepare(cat, "select bogus", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.GetOrPrepare(cat, "select bogus", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2 (errors must not cache)", calls)
	}
	_, _, _, size := c.Stats()
	if size != 0 {
		t.Fatalf("failed entries left in cache: size=%d", size)
	}
}

// TestCacheConcurrentSingleBuild: many concurrent first-preparers of
// one text build the plan exactly once and all receive it.
func TestCacheConcurrentSingleBuild(t *testing.T) {
	db, _ := miniCat(t)
	cat := logical.CatalogFor(db)
	c := New(4)
	const q = "select count(*) from lineitem where l_quantity < ?"
	var calls int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	stmts := make([]*Statement, 16)
	for i := range stmts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, err := c.GetOrPrepare(cat, q, func() (*logical.Plan, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return logical.Prepare(db, q)
			})
			if err != nil {
				t.Error(err)
				return
			}
			stmts[i] = st
		}(i)
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("plan built %d times, want 1", calls)
	}
	for _, st := range stmts[1:] {
		if st != stmts[0] {
			t.Fatal("concurrent preparers received different statements")
		}
	}
}

// TestStatementExecuteEngines: one cached statement executes on every
// explicit engine and via Auto, with identical rows everywhere, and
// the router accumulates observations from all of it. After the two
// pure engines have run, Auto's try-each-arm-first phase
// deterministically picks the untried hybrid arm, reported under its
// decorated name.
func TestStatementExecuteEngines(t *testing.T) {
	db, _ := miniCat(t)
	cat := logical.CatalogFor(db)
	c := New(4)
	const q = "select o_custkey, count(*) from orders where o_custkey < ? group by o_custkey order by 1"
	st, _, err := c.GetOrPrepare(cat, q, func() (*logical.Plan, error) { return logical.Prepare(db, q) })
	if err != nil {
		t.Fatal(err)
	}
	vals, err := st.BindTexts([]string{"7"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ty, used, err := st.Execute(ctx, registry.Typer, vals, 2, 0)
	if err != nil || used != registry.Typer {
		t.Fatalf("typer: used=%q err=%v", used, err)
	}
	tw, used, err := st.Execute(ctx, registry.Tectorwise, vals, 2, 0)
	if err != nil || used != registry.Tectorwise {
		t.Fatalf("tectorwise: used=%q err=%v", used, err)
	}
	au, used, err := st.Execute(ctx, Auto, vals, 2, 0)
	if err != nil || !strings.HasPrefix(used, registry.Hybrid+"[") {
		t.Fatalf("auto: used=%q err=%v (want the untried hybrid arm)", used, err)
	}
	hy, used, err := st.Execute(ctx, registry.Hybrid, vals, 2, 0)
	if err != nil || !strings.HasPrefix(used, registry.Hybrid+"[") {
		t.Fatalf("hybrid: used=%q err=%v", used, err)
	}
	if !sqlcheck.SameRows(sqlcheck.Canon(ty.Rows), sqlcheck.Canon(tw.Rows)) ||
		!sqlcheck.SameRows(sqlcheck.Canon(ty.Rows), sqlcheck.Canon(au.Rows)) ||
		!sqlcheck.SameRows(sqlcheck.Canon(ty.Rows), sqlcheck.Canon(hy.Rows)) {
		t.Fatalf("engines disagree: typer=%v tectorwise=%v auto=%v hybrid=%v", ty.Rows, tw.Rows, au.Rows, hy.Rows)
	}
	var total uint64
	for _, a := range st.Router().Snapshot() {
		total += a.N
	}
	if total != 4 {
		t.Fatalf("router observed %d executions, want 4", total)
	}
	// The hybrid executions also trained the per-pipeline router.
	var pipeTotal uint64
	for _, a := range st.PipeRouter().PipeSnapshot() {
		pipeTotal += a.N[0] + a.N[1]
	}
	if pipeTotal == 0 {
		t.Fatal("per-pipeline router observed nothing from the hybrid executions")
	}
	if _, _, err := st.Execute(ctx, "bogus", vals, 1, 0); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := st.BindTexts([]string{"1", "2"}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
