package prepcache

import (
	"testing"
	"time"

	"paradigms/internal/registry"
)

// fakeClock is a deterministic latency model driving the router the
// way real executions would: each pick "runs" on the chosen engine,
// advances the clock by that engine's current latency, and feeds the
// observation back. No real time is involved anywhere.
type fakeClock struct {
	now time.Duration
	lat map[string]time.Duration
}

func (c *fakeClock) run(r *Router) string {
	engine := r.Pick()
	d := c.lat[engine]
	c.now += d
	r.Observe(engine, d)
	return engine
}

// TestRouterConvergesToFasterEngine: with Typer 5x slower than
// Tectorwise, the router settles on Tectorwise for all non-probe picks
// while still probing the slow arm on the deterministic epsilon
// schedule (no starvation); when the latency relation flips, the
// router flips with it.
func TestRouterConvergesToFasterEngine(t *testing.T) {
	r := &Router{}
	clock := &fakeClock{lat: map[string]time.Duration{
		registry.Typer:      5 * time.Millisecond,
		registry.Tectorwise: 1 * time.Millisecond,
	}}

	const rounds = 400
	picks := map[string]int{}
	var last100 []string
	for i := 0; i < rounds; i++ {
		e := clock.run(r)
		picks[e]++
		last100 = append(last100, e)
		if len(last100) > 100 {
			last100 = last100[1:]
		}
	}

	// Convergence: the fast engine dominates overall and at steady
	// state wins every pick except the scheduled probes.
	if fast := picks[registry.Tectorwise]; fast < rounds*3/4 {
		t.Fatalf("router did not converge: fast engine picked %d/%d", fast, rounds)
	}
	steadyFast := 0
	for _, e := range last100 {
		if e == registry.Tectorwise {
			steadyFast++
		}
	}
	if want := 100 - 100/ProbeEvery - 1; steadyFast < want {
		t.Fatalf("steady state not reached: fast engine %d/100 of last picks (want >= %d)", steadyFast, want)
	}

	// No starvation: the slow arm keeps being probed on schedule.
	if slow := picks[registry.Typer]; slow < rounds/ProbeEvery-2 {
		t.Fatalf("probe arm starved: slow engine picked only %d times over %d rounds", slow, rounds)
	}

	// Flip the latencies: Typer becomes the fast engine. The probes
	// keep its EWMA fresh, so the router must flip its preference.
	clock.lat[registry.Typer] = 500 * time.Microsecond
	clock.lat[registry.Tectorwise] = 4 * time.Millisecond
	flipPicks := map[string]int{}
	flipped := -1
	for i := 0; i < 200; i++ {
		e := clock.run(r)
		flipPicks[e]++
		if flipped < 0 && r.Best() == registry.Typer {
			flipped = i
		}
	}
	if flipped < 0 {
		t.Fatalf("router never flipped after the latency inversion: %+v", r.Snapshot())
	}
	// The flip requires probing the now-fast arm and a few EWMA steps;
	// a couple of probe cycles must suffice.
	if flipped > 4*ProbeEvery {
		t.Fatalf("router flipped too slowly: after %d picks (want <= %d)", flipped, 4*ProbeEvery)
	}
	tail := 0
	for i := 0; i < 100; i++ {
		if clock.run(r) == registry.Typer {
			tail++
		}
	}
	if want := 100 - 100/ProbeEvery - 1; tail < want {
		t.Fatalf("router did not settle on the new fast engine: %d/100 (want >= %d)", tail, want)
	}
}

// TestRouterTriesBothArmsFirst: the first two picks measure each
// engine once before any preference forms.
func TestRouterTriesBothArmsFirst(t *testing.T) {
	r := &Router{}
	first := r.Pick()
	r.Observe(first, time.Millisecond)
	second := r.Pick()
	if first == second {
		t.Fatalf("router picked %s twice before measuring both arms", first)
	}
	if r.Best() != "" {
		t.Fatalf("Best() = %q before both arms observed", r.Best())
	}
	r.Observe(second, 2*time.Millisecond)
	if got := r.Best(); got != first {
		t.Fatalf("Best() = %q, want the faster %q", got, first)
	}
}

// TestRouterRoutesAroundFailingArm: a backend that always fails is
// penalized rather than left untried, so auto routing settles on the
// healthy arm instead of retrying the broken one forever — while the
// epsilon probe keeps re-checking it, so a recovered backend heals.
func TestRouterRoutesAroundFailingArm(t *testing.T) {
	r := &Router{}
	broken := registry.Typer
	failures := 0
	for i := 0; i < 100; i++ {
		e := r.Pick()
		if e == broken {
			failures++
			r.ObserveFailure(e)
		} else {
			r.Observe(e, time.Millisecond)
		}
	}
	// The broken arm is tried once up front and then only on the probe
	// schedule — never as the preferred arm.
	if max := 1 + 100/ProbeEvery + 1; failures > max {
		t.Fatalf("broken arm picked %d/100 times (want <= %d)", failures, max)
	}
	// Recovery: the broken arm starts succeeding faster than the
	// healthy one; probes must heal its EWMA and flip the preference.
	// Decaying a 1s penalty to sub-millisecond at α=0.25 takes ~25
	// probe observations, i.e. ~200 picks on the ε=1/8 schedule.
	for i := 0; i < 40*ProbeEvery; i++ {
		e := r.Pick()
		if e == broken {
			r.Observe(e, 100*time.Microsecond)
		} else {
			r.Observe(e, time.Millisecond)
		}
	}
	if r.Best() != broken {
		t.Fatalf("recovered arm never regained preference: %+v", r.Snapshot())
	}
}

// TestRouterIgnoresUnknownEngine: observations for engines the router
// does not model must not corrupt its state.
func TestRouterIgnoresUnknownEngine(t *testing.T) {
	r := &Router{}
	r.Observe("reference", time.Second)
	for _, a := range r.Snapshot() {
		if a.N != 0 {
			t.Fatalf("unknown engine observation leaked into arm %s", a.Engine)
		}
	}
}
