package prepcache

import (
	"testing"
	"time"

	"paradigms/internal/registry"
)

// fakeClock is a deterministic latency model driving the router the
// way real executions would: each pick "runs" on the chosen engine,
// advances the clock by that engine's current latency, and feeds the
// observation back. No real time is involved anywhere.
type fakeClock struct {
	now time.Duration
	lat map[string]time.Duration
}

func (c *fakeClock) run(r *Router) string {
	engine := r.Pick()
	d := c.lat[engine]
	c.now += d
	r.Observe(engine, d)
	return engine
}

// TestRouterConvergesToFasterEngine: with Tectorwise the fastest of
// the three arms, the router settles on it for all non-probe picks
// while still probing the losing arms on the deterministic epsilon
// schedule (no starvation); when the latency relation flips, the
// router flips with it.
func TestRouterConvergesToFasterEngine(t *testing.T) {
	r := &Router{}
	clock := &fakeClock{lat: map[string]time.Duration{
		registry.Typer:      5 * time.Millisecond,
		registry.Tectorwise: 1 * time.Millisecond,
		registry.Hybrid:     3 * time.Millisecond,
	}}

	const rounds = 400
	picks := map[string]int{}
	var last100 []string
	for i := 0; i < rounds; i++ {
		e := clock.run(r)
		picks[e]++
		last100 = append(last100, e)
		if len(last100) > 100 {
			last100 = last100[1:]
		}
	}

	// Convergence: the fast engine dominates overall and at steady
	// state wins every pick except the scheduled probes.
	if fast := picks[registry.Tectorwise]; fast < rounds*3/4 {
		t.Fatalf("router did not converge: fast engine picked %d/%d", fast, rounds)
	}
	steadyFast := 0
	for _, e := range last100 {
		if e == registry.Tectorwise {
			steadyFast++
		}
	}
	if want := 100 - 100/ProbeEvery - 1; steadyFast < want {
		t.Fatalf("steady state not reached: fast engine %d/100 of last picks (want >= %d)", steadyFast, want)
	}

	// No starvation: each losing arm keeps being probed on schedule
	// (the probes rotate over the numArms-1 non-best arms).
	if slow := picks[registry.Typer]; slow < rounds/((numArms-1)*ProbeEvery)-2 {
		t.Fatalf("probe arm starved: slowest engine picked only %d times over %d rounds", slow, rounds)
	}
	if mid := picks[registry.Hybrid]; mid < rounds/((numArms-1)*ProbeEvery)-2 {
		t.Fatalf("probe arm starved: middle engine picked only %d times over %d rounds", mid, rounds)
	}

	// Flip the latencies: Typer becomes the fast engine. The probes
	// keep its EWMA fresh, so the router must flip its preference.
	clock.lat[registry.Typer] = 500 * time.Microsecond
	clock.lat[registry.Tectorwise] = 4 * time.Millisecond
	flipped := -1
	for i := 0; i < 200; i++ {
		clock.run(r)
		if flipped < 0 && r.Best() == registry.Typer {
			flipped = i
		}
	}
	if flipped < 0 {
		t.Fatalf("router never flipped after the latency inversion: %+v", r.Snapshot())
	}
	// The flip requires probing the now-fast arm (once per
	// (numArms-1)*ProbeEvery picks) and a few EWMA steps; a few probe
	// cycles must suffice.
	if flipped > 10*ProbeEvery {
		t.Fatalf("router flipped too slowly: after %d picks (want <= %d)", flipped, 10*ProbeEvery)
	}
	tail := 0
	for i := 0; i < 100; i++ {
		if clock.run(r) == registry.Typer {
			tail++
		}
	}
	if want := 100 - 100/ProbeEvery - 1; tail < want {
		t.Fatalf("router did not settle on the new fast engine: %d/100 (want >= %d)", tail, want)
	}
}

// TestRouterTriesEachArmFirst: the first numArms picks measure each
// engine once before any preference forms.
func TestRouterTriesEachArmFirst(t *testing.T) {
	r := &Router{}
	seen := map[string]bool{}
	var order []string
	for i := 0; i < numArms; i++ {
		e := r.Pick()
		if seen[e] {
			t.Fatalf("router picked %s twice before measuring every arm (order %v)", e, order)
		}
		seen[e] = true
		order = append(order, e)
		if r.Best() != "" {
			t.Fatalf("Best() = %q before all arms observed", r.Best())
		}
		r.Observe(e, time.Duration(i+1)*time.Millisecond)
	}
	if got := r.Best(); got != order[0] {
		t.Fatalf("Best() = %q, want the faster %q", got, order[0])
	}
}

// TestRouterRoutesAroundFailingArm: a backend that always fails is
// penalized rather than left untried, so auto routing settles on a
// healthy arm instead of retrying the broken one forever — while the
// epsilon probe keeps re-checking it, so a recovered backend heals.
func TestRouterRoutesAroundFailingArm(t *testing.T) {
	r := &Router{}
	broken := registry.Typer
	failures := 0
	for i := 0; i < 100; i++ {
		e := r.Pick()
		if e == broken {
			failures++
			r.ObserveFailure(e)
		} else {
			r.Observe(e, time.Millisecond)
		}
	}
	// The broken arm is tried once up front and then only on its share
	// of the probe schedule — never as the preferred arm.
	if max := 1 + 100/ProbeEvery + 1; failures > max {
		t.Fatalf("broken arm picked %d/100 times (want <= %d)", failures, max)
	}
	// Recovery: the broken arm starts succeeding faster than the
	// healthy ones; probes must heal its EWMA and flip the preference.
	// Decaying a 1s penalty below 1ms at α=0.25 takes ~25 probe
	// observations, and the probes alternate between the two non-best
	// arms, so ~25·2·ProbeEvery picks.
	for i := 0; i < 60*ProbeEvery; i++ {
		e := r.Pick()
		if e == broken {
			r.Observe(e, 100*time.Microsecond)
		} else {
			r.Observe(e, time.Millisecond)
		}
	}
	if r.Best() != broken {
		t.Fatalf("recovered arm never regained preference: %+v", r.Snapshot())
	}
}

// TestRouterFailurePenaltyScalesToWorkload: on a statement whose
// healthy latency exceeds 1s, a persistently failing arm must still
// rank slower than the working ones. A fixed 1s penalty ranked the
// broken arm *faster* (1s EWMA vs 5s healthy), converging auto-routing
// onto the arm that never succeeds; the penalty now scales to a
// multiple of the worst other observed arm's EWMA.
func TestRouterFailurePenaltyScalesToWorkload(t *testing.T) {
	r := &Router{}
	broken := registry.Hybrid
	healthy := 5 * time.Second
	failures := 0
	for i := 0; i < 200; i++ {
		e := r.Pick()
		if e == broken {
			failures++
			r.ObserveFailure(e)
		} else {
			r.Observe(e, healthy)
		}
	}
	if got := r.Best(); got == broken {
		t.Fatalf("auto routing converged on the failing arm: %+v", r.Snapshot())
	}
	// The broken arm is tried once up front, then only on its probe
	// share — never as the preferred arm.
	if max := 1 + 200/ProbeEvery + 1; failures > max {
		t.Fatalf("broken arm picked %d/200 times (want <= %d)", failures, max)
	}
	// The penalty must clear the healthy EWMA with margin, and repeated
	// failures must saturate rather than compound without bound.
	for _, arm := range r.Snapshot() {
		if arm.Engine != broken {
			continue
		}
		if arm.Ewma <= healthy {
			t.Fatalf("failing arm EWMA %v does not exceed healthy %v", arm.Ewma, healthy)
		}
		if arm.Ewma > 2*failurePenaltyFactor*healthy {
			t.Fatalf("failing arm EWMA %v compounded past the scaled penalty %v", arm.Ewma, failurePenaltyFactor*healthy)
		}
	}
	// Sub-second statements keep the floor: a fresh router that has
	// only seen microsecond latencies still penalizes failures at >= 1s.
	r2 := &Router{}
	r2.Observe(registry.Typer, 50*time.Microsecond)
	r2.Observe(registry.Tectorwise, 60*time.Microsecond)
	r2.ObserveFailure(registry.Hybrid)
	for _, arm := range r2.Snapshot() {
		if arm.Engine == registry.Hybrid && arm.Ewma < failurePenaltyFloor {
			t.Fatalf("failure penalty %v under the %v floor", arm.Ewma, failurePenaltyFloor)
		}
	}
}

// TestRouterIgnoresUnknownEngine: observations for engines the router
// does not model must not corrupt its state.
func TestRouterIgnoresUnknownEngine(t *testing.T) {
	r := &Router{}
	r.Observe("reference", time.Second)
	for _, a := range r.Snapshot() {
		if a.N != 0 {
			t.Fatalf("unknown engine observation leaked into arm %s", a.Engine)
		}
	}
}

// TestRouterStripsHybridDecoration: an observation reported under the
// decorated name ("hybrid[t,v]") lands in the hybrid arm.
func TestRouterStripsHybridDecoration(t *testing.T) {
	r := &Router{}
	r.Observe(registry.Hybrid+"[t,v,t]", 2*time.Millisecond)
	for _, a := range r.Snapshot() {
		switch a.Engine {
		case registry.Hybrid:
			if a.N != 1 || a.Ewma != 2*time.Millisecond {
				t.Fatalf("decorated observation mishandled: %+v", a)
			}
		default:
			if a.N != 0 {
				t.Fatalf("decorated observation leaked into arm %s", a.Engine)
			}
		}
	}
}
