package prepcache

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"paradigms/internal/feedback"
	"paradigms/internal/logical"
	"paradigms/internal/registry"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/storage"
)

// skewDB builds a database whose value distribution contradicts the
// planner's static selectivity guesses in both directions: supplier's
// equality filter (guessed 0.1) actually keeps 90% of rows, and part's
// range filter (guessed 0.3) actually keeps 3%. The static join order
// therefore probes the big dimension first; the observed cardinalities
// say to probe the tiny one first. lineitem is the fact spine.
func skewDB(nLine, nDim int) *storage.Database {
	db := storage.NewDatabase("skew", 0)

	supp := storage.NewRelation("supplier")
	sk := make([]int32, nDim)
	ss := make([]int32, nDim)
	for i := range sk {
		sk[i] = int32(i + 1)
		if i%10 != 0 {
			ss[i] = 1 // 90% of suppliers have status 1
		}
	}
	supp.AddInt32("s_suppkey", sk)
	supp.AddInt32("s_status", ss)
	db.Add(supp)

	part := storage.NewRelation("part")
	pk := make([]int32, nDim)
	pz := make([]int32, nDim)
	for i := range pk {
		pk[i] = int32(i + 1)
		pz[i] = int32(i%100) + 1 // sizes 1..100: p_size < 4 keeps 3%
	}
	part.AddInt32("p_partkey", pk)
	part.AddInt32("p_size", pz)
	db.Add(part)

	line := storage.NewRelation("lineitem")
	lsk := make([]int32, nLine)
	lpk := make([]int32, nLine)
	lp := make([]int32, nLine)
	for i := range lsk {
		lsk[i] = int32(i%nDim) + 1
		lpk[i] = int32((i*7)%nDim) + 1
		lp[i] = int32(i%97) + 1
	}
	line.AddInt32("l_suppkey", lsk)
	line.AddInt32("l_partkey", lpk)
	line.AddInt32("l_price", lp)
	db.Add(line)
	return db
}

const skewQuery = `select sum(l_price) as rev from lineitem, supplier, part
	where l_suppkey = s_suppkey and l_partkey = p_partkey and s_status = 1 and p_size < 4`

// feedbackStatement prepares skewQuery as a feedback-armed statement.
func feedbackStatement(t testing.TB, db *storage.Database) (*Statement, *feedback.Store) {
	t.Helper()
	pl, err := logical.Prepare(db, skewQuery)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStatement(Normalize(skewQuery), pl)
	store := feedback.NewStore()
	st.EnableFeedback(store, logical.CatalogFor(db).Version, func(h logical.CardHints) (*logical.Plan, error) {
		return logical.PrepareHints(db, skewQuery, h)
	})
	return st, store
}

// TestFeedbackDriftTriggersReplan is the tentpole's end-to-end proof:
// on the skewed database the static plan's estimates drift ~9x from the
// observed cardinalities, the sustained drift re-plans the statement
// with observed selectivities after exactly DriftRuns executions, the
// re-planned join order differs (the truly-selective part chain moves
// ahead of the truly-wide supplier chain), every execution before and
// after the swap matches the trusted oracle, and — because the
// re-planned plan's estimates come from the same observations — the
// loop converges: no further re-plans.
func TestFeedbackDriftTriggersReplan(t *testing.T) {
	db := skewDB(20000, 2000)
	want, err := sqlcheck.Oracle(db, skewQuery)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := feedbackStatement(t, db)
	before := st.Plan().Format()
	ctx := context.Background()

	exec := func(run int) {
		t.Helper()
		res, _, err := st.Execute(ctx, registry.Tectorwise, nil, 2, 0)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !reflect.DeepEqual(res.Rows, want) {
			t.Fatalf("run %d: result %v differs from oracle %v", run, res.Rows, want)
		}
	}

	for run := 1; run < feedback.DriftRuns; run++ {
		exec(run)
		if n := st.Replans(); n != 0 {
			t.Fatalf("replanned after %d runs (want none before %d sustained drifts)", run, feedback.DriftRuns)
		}
	}
	exec(feedback.DriftRuns)
	if n := st.Replans(); n != 1 {
		t.Fatalf("Replans() = %d after %d drifting runs, want 1", n, feedback.DriftRuns)
	}
	after := st.Plan().Format()
	if after == before {
		t.Fatalf("replan kept the static join order:\n%s", after)
	}
	// The observed selectivities invert the chain order: part (3%
	// observed vs 30% guessed) becomes the first-probed build chain,
	// supplier (90% observed vs 10% guessed) the outermost. In the
	// formatted tree the first-probed chain is the innermost, i.e.
	// printed after the outer build.
	if sup, prt := strings.Index(after, "scan supplier"), strings.Index(after, "scan part"); sup < 0 || prt < 0 || sup > prt {
		t.Fatalf("re-planned order did not move part's build inward:\n%s", after)
	}

	// Convergence: the re-planned statement observes drift ~1 and keeps
	// its plan — and keeps producing oracle-identical results.
	for run := 1; run <= 2*feedback.DriftRuns; run++ {
		exec(run)
	}
	if n := st.Replans(); n != 1 {
		t.Fatalf("feedback loop did not converge: %d replans after post-swap runs", n)
	}
}

// TestFeedbackReplanAcrossEngines: drift accumulated by whichever
// engine runs still re-plans, and the compiled backend executes the
// re-planned template identically to the oracle (the plan swap is
// engine-agnostic — both lowerings consume the same template).
func TestFeedbackReplanAcrossEngines(t *testing.T) {
	db := skewDB(20000, 2000)
	want, err := sqlcheck.Oracle(db, skewQuery)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := feedbackStatement(t, db)
	ctx := context.Background()
	engines := []string{registry.Typer, registry.Tectorwise, registry.Typer}
	for i, eng := range engines {
		res, _, err := st.Execute(ctx, eng, nil, 2, 0)
		if err != nil {
			t.Fatalf("%s run %d: %v", eng, i, err)
		}
		if !reflect.DeepEqual(res.Rows, want) {
			t.Fatalf("%s run %d: result differs from oracle", eng, i)
		}
	}
	if n := st.Replans(); n != 1 {
		t.Fatalf("Replans() = %d after mixed-engine drifting runs, want 1", n)
	}
	res, _, err := st.Execute(ctx, registry.Typer, nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatal("compiled execution of the re-planned template differs from oracle")
	}
}

// BenchmarkFeedbackReplan quantifies the tentpole's payoff: the same
// skewed query executed from the static plan vs the feedback-re-planned
// one. The static order probes the 90%-retained supplier hash table
// first, so almost every fact row pays the second probe too; the
// re-planned order eliminates 97% of fact rows on the tiny part table
// first.
func BenchmarkFeedbackReplan(b *testing.B) {
	db := skewDB(300000, 5000)
	static, err := logical.Prepare(db, skewQuery)
	if err != nil {
		b.Fatal(err)
	}
	st, _ := feedbackStatement(b, db)
	ctx := context.Background()
	for i := 0; i < feedback.DriftRuns; i++ {
		if _, _, err := st.Execute(ctx, registry.Tectorwise, nil, 2, 0); err != nil {
			b.Fatal(err)
		}
	}
	replanned := st.Plan()
	if replanned.Format() == static.Format() {
		b.Fatal("feedback did not change the join order")
	}
	for name, pl := range map[string]*logical.Plan{"static": static, "replanned": replanned} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pl.ExecuteArgs(ctx, 2, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
