package prepcache

import (
	"testing"
	"time"

	"paradigms/internal/hybrid"
)

// pipeClock is the fake-clock latency model for the per-pipeline
// router: each round decides an assignment for a fixed plan shape,
// "runs" it by charging every pipeline its chosen arm's current
// latency, and feeds the observations back. Deterministic, no real
// time.
type pipeClock struct {
	lat [][2]time.Duration // per pipeline, indexed by hybrid.Engine
}

func (c *pipeClock) run(p *PipelineRouter, meta []hybrid.PipeMeta) []hybrid.Engine {
	assign := p.Decide(meta)
	nanos := make([]int64, len(assign))
	for i, e := range assign {
		nanos[i] = int64(c.lat[i][e])
	}
	p.Observe(assign, nanos)
	return assign
}

// threePipes is a plan shape with contrasting cost-heuristic seeds:
// P0 a filter-only build and P1 a probe-carrying build (both seeded
// compiled — builds end in a materialization boundary anyway), P2 the
// probing final (seeded vectorized).
func threePipes() []hybrid.PipeMeta {
	return []hybrid.PipeMeta{
		{Table: "part", Rows: 20000, Filters: 2, Build: true},
		{Table: "lineorder", Rows: 100000, Probes: 2, Build: true},
		{Table: "lineorder", Rows: 100000, Probes: 1, Filters: 1},
	}
}

// TestPipelineRouterSeedsFromCostHeuristic: the first decision is
// exactly the cost heuristic's, and the second tries each pipeline's
// other arm once, so both arms of every pipeline get measured.
func TestPipelineRouterSeedsFromCostHeuristic(t *testing.T) {
	p := &PipelineRouter{}
	meta := threePipes()
	clock := &pipeClock{lat: [][2]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
	}}
	seed := hybrid.CostAssign(meta)
	first := clock.run(p, meta)
	for i := range meta {
		if first[i] != seed[i] {
			t.Fatalf("first decision P%d = %v, want heuristic seed %v", i, first[i], seed[i])
		}
	}
	second := clock.run(p, meta)
	for i := range meta {
		if second[i] == first[i] {
			t.Fatalf("second decision P%d repeated %v before measuring the other arm", i, first[i])
		}
	}
}

// TestPipelineRouterConvergesPerPipeline: with per-pipeline latencies
// that contradict the heuristic seed everywhere, every pipeline converges
// to its own faster arm independently — and keeps probing its losing
// arm on the rotating epsilon schedule (no starvation).
func TestPipelineRouterConvergesPerPipeline(t *testing.T) {
	p := &PipelineRouter{}
	meta := threePipes()
	clock := &pipeClock{lat: [][2]time.Duration{
		{2 * time.Millisecond, 1 * time.Millisecond}, // seeded compiled, vectorized faster
		{3 * time.Millisecond, 1 * time.Millisecond}, // seeded compiled, vectorized faster
		{1 * time.Millisecond, 2 * time.Millisecond}, // seeded vectorized, compiled faster
	}}
	want := []hybrid.Engine{hybrid.EngineVectorized, hybrid.EngineVectorized, hybrid.EngineCompiled}

	const rounds = 300
	wrong := make([]int, len(meta))
	steadyWrong := make([]int, len(meta))
	loserPicks := make([]int, len(meta))
	for r := 0; r < rounds; r++ {
		assign := clock.run(p, meta)
		for i, e := range assign {
			if e != want[i] {
				wrong[i]++
				if r >= rounds-100 {
					steadyWrong[i]++
				}
				if r >= 2 { // past the try-both-arms warmup
					loserPicks[i]++
				}
			}
		}
	}
	for i := range meta {
		// Steady state: only the rotating probe (one pipeline per
		// ProbeEvery-th decision) runs a pipeline's losing arm.
		if max := 100/ProbeEvery + 1; steadyWrong[i] > max {
			t.Fatalf("P%d did not converge: losing arm chosen %d/100 at steady state (want <= %d): %+v",
				i, steadyWrong[i], max, p.PipeSnapshot())
		}
		// No starvation: the losing arm still gets its share of the
		// probe rotation.
		if min := rounds/(len(meta)*ProbeEvery) - 2; loserPicks[i] < min {
			t.Fatalf("P%d losing arm starved: probed %d times over %d rounds (want >= %d)",
				i, loserPicks[i], rounds, min)
		}
	}
}

// TestPipelineRouterFlipsWithWorkload: after convergence, inverting
// one pipeline's latencies flips that pipeline's steady-state
// assignment within a bounded number of decisions — the rotating probe
// keeps the losing arm's estimate fresh enough to notice.
func TestPipelineRouterFlipsWithWorkload(t *testing.T) {
	p := &PipelineRouter{}
	meta := threePipes()
	clock := &pipeClock{lat: [][2]time.Duration{
		{1 * time.Millisecond, 2 * time.Millisecond},
		{1 * time.Millisecond, 3 * time.Millisecond},
		{2 * time.Millisecond, 1 * time.Millisecond},
	}}
	for r := 0; r < 100; r++ {
		clock.run(p, meta)
	}
	// Invert P0: vectorized becomes 4x faster than compiled.
	clock.lat[0] = [2]time.Duration{2 * time.Millisecond, 500 * time.Microsecond}
	flipped := -1
	streak := 0
	for r := 0; r < 30*ProbeEvery; r++ {
		assign := clock.run(p, meta)
		if assign[0] == hybrid.EngineVectorized {
			// Three in a row cannot be the rotating probe (P0 is
			// probed at most once per len(meta)*ProbeEvery decisions)
			// — the EWMA comparison itself has flipped.
			if streak++; streak >= 3 && flipped < 0 {
				flipped = r
			}
		} else {
			streak = 0
		}
	}
	if flipped < 0 {
		t.Fatalf("P0 never flipped after its latency inversion: %+v", p.PipeSnapshot())
	}
	if flipped > 20*ProbeEvery {
		t.Fatalf("P0 flipped too slowly: after %d decisions (want <= %d)", flipped, 20*ProbeEvery)
	}
}

// TestPipelineRouterResetsOnEqualCountShapeSwap: a re-plan that swaps
// pipeline composition at the SAME pipeline count — e.g. a
// feedback-driven re-plan reordering two build chains — must reset the
// arm histories too. Keying the reset on the count alone silently
// reused pipeline 0's EWMAs for what is now a different table's
// pipeline.
func TestPipelineRouterResetsOnEqualCountShapeSwap(t *testing.T) {
	p := &PipelineRouter{}
	before := []hybrid.PipeMeta{
		{Table: "supplier", Rows: 20000, Filters: 1, Build: true},
		{Table: "part", Rows: 20000, Filters: 2, Build: true},
		{Table: "lineitem", Rows: 100000, Probes: 2, Filters: 1},
	}
	clock := &pipeClock{lat: [][2]time.Duration{
		{2 * time.Millisecond, 1 * time.Millisecond},
		{1 * time.Millisecond, 3 * time.Millisecond},
		{2 * time.Millisecond, 1 * time.Millisecond},
	}}
	for r := 0; r < 50; r++ {
		clock.run(p, before)
	}

	// Same count, different composition: the re-plan flipped the two
	// build chains' order.
	after := []hybrid.PipeMeta{before[1], before[0], before[2]}
	seed := hybrid.CostAssign(after)
	first := p.Decide(after)
	for i := range after {
		if first[i] != seed[i] {
			t.Fatalf("post-replan decision P%d = %v, want heuristic seed %v", i, first[i], seed[i])
		}
	}
	for i, a := range p.PipeSnapshot() {
		if a.N[0] != 0 || a.N[1] != 0 {
			t.Fatalf("P%d carried stale observations across the equal-count replan: %+v", i, a)
		}
	}

	// An unchanged shape, by contrast, must NOT reset: history is the
	// router's whole value.
	p.Observe(first, []int64{int64(time.Millisecond), int64(time.Millisecond), int64(time.Millisecond)})
	p.Decide(after)
	total := uint64(0)
	for _, a := range p.PipeSnapshot() {
		total += a.N[0] + a.N[1]
	}
	if total == 0 {
		t.Fatal("same-shape decide wiped the arm histories")
	}
}

// TestPipelineRouterResetsOnShapeChange: when the plan's pipeline
// count changes (replan after a catalog change), the estimates reset
// and routing starts over from the heuristic seed for the new shape.
func TestPipelineRouterResetsOnShapeChange(t *testing.T) {
	p := &PipelineRouter{}
	meta3 := threePipes()
	clock3 := &pipeClock{lat: [][2]time.Duration{
		{2 * time.Millisecond, 1 * time.Millisecond},
		{1 * time.Millisecond, 3 * time.Millisecond},
		{2 * time.Millisecond, 1 * time.Millisecond},
	}}
	for r := 0; r < 50; r++ {
		clock3.run(p, meta3)
	}

	meta2 := []hybrid.PipeMeta{
		{Table: "date", Rows: 2556, Filters: 1, Build: true},
		{Table: "lineorder", Rows: 100000, Probes: 1},
	}
	seed := hybrid.CostAssign(meta2)
	first := p.Decide(meta2)
	for i := range meta2 {
		if first[i] != seed[i] {
			t.Fatalf("post-replan decision P%d = %v, want heuristic seed %v", i, first[i], seed[i])
		}
	}
	snap := p.PipeSnapshot()
	if len(snap) != len(meta2) {
		t.Fatalf("snapshot tracks %d pipelines after replan, want %d", len(snap), len(meta2))
	}
	for i, a := range snap {
		if a.N[0] != 0 || a.N[1] != 0 {
			t.Fatalf("P%d carried stale observations across the replan: %+v", i, a)
		}
	}

	// A stale-shape observation (the raced execution of the old plan)
	// must be dropped, not misattributed to the new pipelines.
	p.Observe([]hybrid.Engine{0, 1, 0}, []int64{1, 1, 1})
	for i, a := range p.PipeSnapshot() {
		if a.N[0] != 0 || a.N[1] != 0 {
			t.Fatalf("stale-shape observation leaked into P%d: %+v", i, a)
		}
	}
}
