// Package vector provides the vector-at-a-time building blocks of the
// Tectorwise engine: selection vectors and pre-allocated typed buffers.
//
// A selection vector is an array of positions into the current vector of
// tuples (§2.1). Primitives either scan a dense range [0, n) or, when a
// selection vector is present, the sparse positions sel[0:n]. All buffers
// are allocated once at plan-build time with the configured vector size,
// so query execution itself performs no allocation.
package vector

import "paradigms/internal/types"

// DefaultSize is the default number of tuples per vector. The paper uses
// 1000 (VectorWise's default) and shows in Fig. 5 that sizes between ~1K
// and 64K perform within a few percent.
const DefaultSize = 1000

// Sel is a selection vector: positions of qualifying tuples, ascending.
type Sel = []int32

// Iota fills sel[0:n] with 0..n-1 and returns it, growing if needed.
// A dense range is represented by a nil selection vector in primitives;
// Iota is used where an explicit vector is required (e.g. tests).
func Iota(sel Sel, n int) Sel {
	if cap(sel) < n {
		sel = make(Sel, n)
	}
	sel = sel[:n]
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// Buffers is the per-operator scratch memory of a Tectorwise operator
// instance. Each worker's operator tree owns private Buffers; only
// operator *shared state* (hash tables, result sinks) is shared (§6.1).
type Buffers struct {
	size int
	sels [][]int32
	i32s [][]int32
	i64s [][]int64
	nums [][]types.Numeric
	refs [][]uint64
	b8s  [][]byte
}

// NewBuffers creates a buffer arena for vectors of the given size.
func NewBuffers(size int) *Buffers {
	if size <= 0 {
		size = DefaultSize
	}
	return &Buffers{size: size}
}

// Size returns the configured vector size.
func (b *Buffers) Size() int { return b.size }

// Sel allocates a selection vector buffer of the vector size.
func (b *Buffers) Sel() []int32 {
	v := make([]int32, b.size)
	b.sels = append(b.sels, v)
	return v
}

// I32 allocates an int32 vector buffer.
func (b *Buffers) I32() []int32 {
	v := make([]int32, b.size)
	b.i32s = append(b.i32s, v)
	return v
}

// I64 allocates an int64 vector buffer.
func (b *Buffers) I64() []int64 {
	v := make([]int64, b.size)
	b.i64s = append(b.i64s, v)
	return v
}

// Num allocates a Numeric vector buffer.
func (b *Buffers) Num() []types.Numeric {
	v := make([]types.Numeric, b.size)
	b.nums = append(b.nums, v)
	return v
}

// Ref allocates a 64-bit reference vector buffer (hash values, hash-table
// entry references).
func (b *Buffers) Ref() []uint64 {
	v := make([]uint64, b.size)
	b.refs = append(b.refs, v)
	return v
}

// Bytes allocates a byte vector buffer.
func (b *Buffers) Bytes() []byte {
	v := make([]byte, b.size)
	b.b8s = append(b.b8s, v)
	return v
}

// Footprint returns the total bytes held by the arena; the vector-size
// experiment (Fig. 5) reports it to relate vector size to cache capacity.
func (b *Buffers) Footprint() int64 {
	var total int64
	for _, v := range b.sels {
		total += int64(cap(v)) * 4
	}
	for _, v := range b.i32s {
		total += int64(cap(v)) * 4
	}
	for _, v := range b.i64s {
		total += int64(cap(v)) * 8
	}
	for _, v := range b.nums {
		total += int64(cap(v)) * 8
	}
	for _, v := range b.refs {
		total += int64(cap(v)) * 8
	}
	for _, v := range b.b8s {
		total += int64(cap(v))
	}
	return total
}
