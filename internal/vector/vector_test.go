package vector

import "testing"

func TestIota(t *testing.T) {
	s := Iota(nil, 5)
	for i, v := range s {
		if v != int32(i) {
			t.Fatalf("s[%d] = %d", i, v)
		}
	}
	// Reuse without reallocation when capacity suffices.
	s2 := Iota(s, 3)
	if len(s2) != 3 || &s2[0] != &s[0] {
		t.Error("Iota reallocated despite sufficient capacity")
	}
	// Growth.
	s3 := Iota(s, 10)
	if len(s3) != 10 || s3[9] != 9 {
		t.Error("Iota did not grow")
	}
}

func TestBuffersSizesAndFootprint(t *testing.T) {
	b := NewBuffers(100)
	if b.Size() != 100 {
		t.Fatalf("Size = %d", b.Size())
	}
	sel := b.Sel()
	i32 := b.I32()
	i64 := b.I64()
	num := b.Num()
	ref := b.Ref()
	by := b.Bytes()
	for _, l := range []int{len(sel), len(i32), len(i64), len(num), len(ref), len(by)} {
		if l != 100 {
			t.Fatalf("buffer length %d, want 100", l)
		}
	}
	want := int64(100*4 + 100*4 + 100*8 + 100*8 + 100*8 + 100)
	if got := b.Footprint(); got != want {
		t.Errorf("Footprint = %d, want %d", got, want)
	}
}

func TestBuffersDefaultSize(t *testing.T) {
	b := NewBuffers(0)
	if b.Size() != DefaultSize {
		t.Errorf("default size = %d, want %d", b.Size(), DefaultSize)
	}
}
