package sqlcheck

import (
	"fmt"
	"math/rand"
	"strings"

	"paradigms/internal/catalog"
	"paradigms/internal/storage"
)

// The seeded random SQL generator. Every query is drawn from a
// pre-validated join template (a table set plus the equi-join conjuncts
// that connect it — always key-unique N:1 attachments, the planner's
// supported join shape) and then randomized: per-table filters sampled
// from real column values, a projection / global-aggregate / grouped
// shape, HAVING over aggregates, ORDER BY ordinals, and LIMIT. LIMIT is
// only ever emitted under an ORDER BY covering every output column, so
// the surviving row multiset is deterministic and the differential
// harness can compare canonicalized rows across engines.

// template is one pre-validated FROM + join-conjunct combination.
type template struct {
	tables []string
	joins  []string
}

var tpchTemplates = []template{
	{tables: []string{"lineitem"}},
	{tables: []string{"orders"}},
	{tables: []string{"customer"}},
	{tables: []string{"part"}},
	{tables: []string{"supplier"}},
	{tables: []string{"nation"}},
	{tables: []string{"orders", "customer"}, joins: []string{"o_custkey = c_custkey"}},
	{tables: []string{"lineitem", "orders"}, joins: []string{"l_orderkey = o_orderkey"}},
	{tables: []string{"lineitem", "supplier"}, joins: []string{"l_suppkey = s_suppkey"}},
	{tables: []string{"lineitem", "part"}, joins: []string{"l_partkey = p_partkey"}},
	{tables: []string{"partsupp", "part"}, joins: []string{"ps_partkey = p_partkey"}},
	{tables: []string{"partsupp", "supplier"}, joins: []string{"ps_suppkey = s_suppkey"}},
	{tables: []string{"customer", "nation"}, joins: []string{"c_nationkey = n_nationkey"}},
	{tables: []string{"supplier", "nation", "region"},
		joins: []string{"s_nationkey = n_nationkey", "n_regionkey = r_regionkey"}},
	{tables: []string{"lineitem", "orders", "customer"},
		joins: []string{"l_orderkey = o_orderkey", "o_custkey = c_custkey"}},
	{tables: []string{"lineitem", "orders", "customer", "nation"},
		joins: []string{"l_orderkey = o_orderkey", "o_custkey = c_custkey", "c_nationkey = n_nationkey"}},
	{tables: []string{"customer", "orders", "lineitem", "supplier", "nation", "region"},
		joins: []string{
			"c_custkey = o_custkey", "l_orderkey = o_orderkey", "l_suppkey = s_suppkey",
			"c_nationkey = s_nationkey", "s_nationkey = n_nationkey", "n_regionkey = r_regionkey"}},
}

var ssbTemplates = []template{
	{tables: []string{"lineorder"}},
	{tables: []string{"date"}},
	{tables: []string{"part"}},
	{tables: []string{"customer"}},
	{tables: []string{"lineorder", "date"}, joins: []string{"lo_orderdate = d_datekey"}},
	{tables: []string{"lineorder", "part"}, joins: []string{"lo_partkey = p_partkey"}},
	{tables: []string{"lineorder", "supplier"}, joins: []string{"lo_suppkey = s_suppkey"}},
	{tables: []string{"lineorder", "customer"}, joins: []string{"lo_custkey = c_custkey"}},
	{tables: []string{"lineorder", "date", "part", "supplier"},
		joins: []string{"lo_orderdate = d_datekey", "lo_partkey = p_partkey", "lo_suppkey = s_suppkey"}},
	{tables: []string{"lineorder", "date", "customer"},
		joins: []string{"lo_orderdate = d_datekey", "lo_custkey = c_custkey"}},
}

// Generate produces one random SQL text over db's catalog from the
// given seeded source. Every generated query parses, binds, plans, and
// executes on both lowering backends (the corpus test enforces this).
func Generate(r *rand.Rand, db *storage.Database) string {
	g := &gen{r: r, cat: catFor(db)}
	return g.generate(db)
}

// GenerateParameterized produces one random SQL text with `?`
// placeholders in place of (most) filter literals, plus two
// independently sampled argument bindings for it — the prepared-
// statement differential harness's input: one cached plan must produce
// oracle-identical rows under every binding. Substitute splices a
// binding back into the text for the fresh-planned/oracle runs.
func GenerateParameterized(r *rand.Rand, db *storage.Database) (text string, bindings [][]string) {
	g := &gen{r: r, cat: catFor(db), bindings: make([][]string, 2)}
	for i := range g.bindings {
		g.bindings[i] = []string{}
	}
	return g.generate(db), g.bindings
}

// Substitute replaces the i-th `?` placeholder (outside string
// literals) with args[i], producing the literal-text spelling of one
// binding.
func Substitute(text string, args []string) string {
	var sb strings.Builder
	inStr := false
	k := 0
	for i := 0; i < len(text); i++ {
		c := text[i]
		if inStr {
			sb.WriteByte(c)
			if c == '\'' {
				inStr = false
			}
			continue
		}
		switch c {
		case '\'':
			inStr = true
			sb.WriteByte(c)
		case '?':
			sb.WriteString(args[k])
			k++
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

func (g *gen) generate(db *storage.Database) string {
	templates := tpchTemplates
	if db.Name == "ssb" {
		templates = ssbTemplates
	}
	tpl := templates[g.r.Intn(len(templates))]

	var conjs []string
	conjs = append(conjs, tpl.joins...)
	for _, tn := range tpl.tables {
		t := g.cat.Table(tn)
		nf := g.pick(0, 0, 1, 1, 2) // 40% no filter, 40% one, 20% two
		for i := 0; i < nf; i++ {
			if c := g.filter(t); c != "" {
				conjs = append(conjs, c)
			}
		}
	}
	if g.r.Intn(20) == 0 {
		conjs = append(conjs, [...]string{"1 = 1", "1 = 2"}[g.r.Intn(2)])
	}

	var sb strings.Builder
	var items []string
	var orderAll bool
	switch g.r.Intn(10) {
	case 0, 1, 2: // projection
		items = g.projection(tpl)
		orderAll = true
	case 3, 4, 5: // global aggregate
		items = g.aggregates(tpl, 1+g.r.Intn(3))
	default: // grouped
		var groupCols []string
		items, groupCols = g.grouped(tpl)
		sb.WriteString("select " + strings.Join(items, ", "))
		sb.WriteString(" from " + strings.Join(tpl.tables, ", "))
		if len(conjs) > 0 {
			sb.WriteString(" where " + strings.Join(conjs, " and "))
		}
		sb.WriteString(" group by " + strings.Join(groupCols, ", "))
		if g.r.Intn(3) == 0 {
			sb.WriteString(fmt.Sprintf(" having count(*) >= %d", 1+g.r.Intn(3)))
		}
		g.orderLimit(&sb, len(items))
		return sb.String()
	}
	sb.WriteString("select " + strings.Join(items, ", "))
	sb.WriteString(" from " + strings.Join(tpl.tables, ", "))
	if len(conjs) > 0 {
		sb.WriteString(" where " + strings.Join(conjs, " and "))
	}
	if orderAll {
		g.orderLimit(&sb, len(items))
	}
	return sb.String()
}

type gen struct {
	r   *rand.Rand
	cat *catalog.Catalog
	// bindings, when non-nil, switches filter literals to `?`
	// placeholders; each binding collects one independently sampled
	// argument text per placeholder.
	bindings [][]string
}

func (g *gen) pick(choices ...int) int { return choices[g.r.Intn(len(choices))] }

// valueCols lists a table's numeric-valued columns (usable in
// expressions, aggregates and comparisons).
func (g *gen) valueCols(t *catalog.Table) []*catalog.Column {
	var out []*catalog.Column
	for _, c := range t.Columns() {
		if c.Type.IsNumeric() {
			out = append(out, c)
		}
	}
	return out
}

// key32Cols lists a table's 32-bit columns (packable group keys).
func (g *gen) key32Cols(t *catalog.Table) []*catalog.Column {
	var out []*catalog.Column
	for _, c := range t.Columns() {
		if c.Type.Kind == catalog.Int32 || c.Type.Kind == catalog.Date {
			out = append(out, c)
		}
	}
	return out
}

func (g *gen) strCols(t *catalog.Table) []*catalog.Column {
	var out []*catalog.Column
	for _, c := range t.Columns() {
		if c.Type.Kind == catalog.String {
			out = append(out, c)
		}
	}
	return out
}

// sample reads a random row's value of a column, rendered as a SQL
// literal at the column's scale. Zero-row relations (possible only on
// synthetic edge databases) still yield a type-correct literal.
func (g *gen) sample(c *catalog.Column) string {
	rel := c.Table.Rel
	if rel.Rows() == 0 {
		if c.Type.Kind == catalog.Date {
			return "date '1995-06-15'"
		}
		return "0"
	}
	row := g.r.Intn(rel.Rows())
	switch c.Type.Kind {
	case catalog.Date:
		return fmt.Sprintf("date '%s'", rel.Date(c.Name)[row])
	case catalog.Numeric:
		v := int64(rel.Numeric(c.Name)[row])
		if c.Type.Scale == 0 {
			return fmt.Sprintf("%d", v)
		}
		pow := int64(1)
		for i := 0; i < c.Type.Scale; i++ {
			pow *= 10
		}
		sign := ""
		if v < 0 {
			sign = "-"
			v = -v
		}
		return fmt.Sprintf("%s%d.%0*d", sign, v/pow, c.Type.Scale, v%pow)
	case catalog.Int64:
		return fmt.Sprintf("%d", rel.Int64(c.Name)[row])
	default:
		return fmt.Sprintf("%d", rel.Int32(c.Name)[row])
	}
}

// lit renders one comparison literal for column c — or, in
// parameterized mode, usually a `?` placeholder whose argument texts
// are sampled independently per binding (string literals never
// parameterize: parameters are numeric/date-valued).
func (g *gen) lit(c *catalog.Column) string {
	if g.bindings == nil || g.r.Intn(3) == 0 {
		return g.sample(c)
	}
	for i := range g.bindings {
		g.bindings[i] = append(g.bindings[i], g.sample(c))
	}
	return "?"
}

// filter emits one random single-table predicate over t.
func (g *gen) filter(t *catalog.Table) string {
	strs := g.strCols(t)
	if len(strs) > 0 && g.r.Intn(4) == 0 {
		c := strs[g.r.Intn(len(strs))]
		heap := t.Rel.String(c.Name)
		if heap.Len() == 0 {
			return ""
		}
		val := func() string { return string(heap.Get(g.r.Intn(heap.Len()))) }
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%s = '%s'", c.Name, val())
		case 1:
			return fmt.Sprintf("%s <> '%s'", c.Name, val())
		default:
			return fmt.Sprintf("%s in ('%s', '%s')", c.Name, val(), val())
		}
	}
	vals := g.valueCols(t)
	if len(vals) == 0 {
		return ""
	}
	c := vals[g.r.Intn(len(vals))]
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	switch g.r.Intn(6) {
	case 0: // between
		return fmt.Sprintf("%s between %s and %s", c.Name, g.lit(c), g.lit(c))
	case 1: // IN list (dates are not IN-able in the grammar's type rules? they are literals too)
		return fmt.Sprintf("%s in (%s, %s, %s)", c.Name, g.lit(c), g.lit(c), g.lit(c))
	case 2: // OR pair
		return fmt.Sprintf("(%s < %s or %s > %s)", c.Name, g.lit(c), c.Name, g.lit(c))
	case 3: // NOT
		return fmt.Sprintf("not (%s %s %s)", c.Name, ops[g.r.Intn(len(ops))], g.lit(c))
	default:
		return fmt.Sprintf("%s %s %s", c.Name, ops[g.r.Intn(len(ops))], g.lit(c))
	}
}

// expr emits a random numeric value expression over the template's
// tables (dates stay bare: the binder rejects date arithmetic). With
// noDate set, date columns are excluded entirely (SUM rejects them).
func (g *gen) expr(tpl template, noDate bool) string {
	t := g.cat.Table(tpl.tables[g.r.Intn(len(tpl.tables))])
	vals := g.valueCols(t)
	if noDate {
		kept := vals[:0]
		for _, c := range vals {
			if c.Type.Kind != catalog.Date {
				kept = append(kept, c)
			}
		}
		vals = kept
	}
	if len(vals) == 0 {
		return "1"
	}
	c := vals[g.r.Intn(len(vals))]
	if c.Type.Kind == catalog.Date || g.r.Intn(2) == 0 {
		return c.Name
	}
	switch g.r.Intn(4) {
	case 0:
		d := vals[g.r.Intn(len(vals))]
		if d.Type.Kind == catalog.Date {
			return c.Name
		}
		return fmt.Sprintf("%s * %s", c.Name, d.Name)
	case 1:
		return fmt.Sprintf("%s * (1 - %s)", c.Name, g.sample(c))
	case 2:
		return fmt.Sprintf("%s + %s", c.Name, g.sample(c))
	default:
		return c.Name
	}
}

// projection emits 1–3 plain select items.
func (g *gen) projection(tpl template) []string {
	n := 1 + g.r.Intn(3)
	items := make([]string, n)
	for i := range items {
		items[i] = g.expr(tpl, false)
	}
	return items
}

// aggregates emits n aggregate select items.
func (g *gen) aggregates(tpl template, n int) []string {
	items := make([]string, n)
	for i := range items {
		switch g.r.Intn(4) {
		case 0:
			items[i] = "count(*)"
		case 1:
			items[i] = fmt.Sprintf("sum(%s)", g.expr(tpl, true))
		case 2:
			items[i] = fmt.Sprintf("min(%s)", g.expr(tpl, false))
		default:
			items[i] = fmt.Sprintf("max(%s)", g.expr(tpl, false))
		}
	}
	return items
}

// grouped emits select items and the GROUP BY column list: one or two
// 32-bit grouping columns (the packable key shapes) plus aggregates.
func (g *gen) grouped(tpl template) (items, groupCols []string) {
	var cands []*catalog.Column
	for _, tn := range tpl.tables {
		cands = append(cands, g.key32Cols(g.cat.Table(tn))...)
	}
	nk := 1
	if len(cands) > 1 && g.r.Intn(2) == 0 {
		nk = 2
	}
	seen := map[string]bool{}
	for len(groupCols) < nk {
		c := cands[g.r.Intn(len(cands))]
		if seen[c.Name] {
			nk--
			continue
		}
		seen[c.Name] = true
		groupCols = append(groupCols, c.Name)
	}
	items = append(items, groupCols...)
	items = append(items, g.aggregates(tpl, 1+g.r.Intn(2))...)
	return items, groupCols
}

// orderLimit appends an ORDER BY over every output ordinal (random
// directions) and, sometimes, a LIMIT.
func (g *gen) orderLimit(sb *strings.Builder, nItems int) {
	if g.r.Intn(4) == 0 {
		return // no ordering, no limit
	}
	keys := make([]string, nItems)
	perm := g.r.Perm(nItems)
	for i, p := range perm {
		dir := ""
		if g.r.Intn(3) == 0 {
			dir = " desc"
		}
		keys[i] = fmt.Sprintf("%d%s", p+1, dir)
	}
	sb.WriteString(" order by " + strings.Join(keys, ", "))
	if g.r.Intn(2) == 0 {
		sb.WriteString(fmt.Sprintf(" limit %d", 1+g.r.Intn(64)))
	}
}
