package sqlcheck

import (
	"bytes"
	"fmt"
	"sort"

	"paradigms/internal/catalog"
	"paradigms/internal/sql"
	"paradigms/internal/storage"
)

// Oracle evaluates a SQL text naively — nested hash joins in FROM
// order, a full re-evaluation of the WHERE conjunction per joined
// tuple, map-based grouping, interpreted expressions — sharing only the
// parser and binder with the engines, none of the planner rewrites or
// execution machinery. Its result rows (same layout as
// logical.Result.Rows) are the trusted side of the differential
// harness.
func Oracle(db *storage.Database, text string) ([][]int64, error) {
	sel, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := sql.Bind(sel, catFor(db)); err != nil {
		return nil, err
	}
	ev := &oracle{sel: sel, tableIdx: map[*catalog.Table]int{}}
	for i, f := range sel.From {
		ev.tables = append(ev.tables, f.Table)
		ev.tableIdx[f.Table] = i
	}
	tuples, err := ev.join()
	if err != nil {
		return nil, err
	}
	if sel.Grouped {
		return ev.grouped(tuples)
	}
	return ev.project(tuples)
}

// oracle is one evaluation's state.
type oracle struct {
	sel      *sql.Select
	tables   []*catalog.Table
	tableIdx map[*catalog.Table]int
}

// tuple is one joined row: a row index per FROM table.
type tuple []int32

// ---------------------------------------------------------------------
// Joining
// ---------------------------------------------------------------------

// conjTables lists the distinct FROM positions an expression touches.
func (ev *oracle) conjTables(e sql.Expr) []int {
	seen := map[int]bool{}
	var out []int
	sql.WalkCols(e, func(c *catalog.Column) {
		i := ev.tableIdx[c.Table]
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	})
	return out
}

// splitAnd flattens the WHERE conjunction.
func splitAnd(e sql.Expr, out *[]sql.Expr) {
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		splitAnd(b.L, out)
		splitAnd(b.R, out)
		return
	}
	*out = append(*out, e)
}

// join enumerates the joined tuples: FROM tables one at a time, each
// attached by its equality edges to the already-joined prefix (hash on
// the first edge, verify the rest), single-table conjuncts applied at
// the scan, and the complete WHERE re-checked per final tuple.
func (ev *oracle) join() ([]tuple, error) {
	var conjs []sql.Expr
	if ev.sel.Where != nil {
		splitAnd(ev.sel.Where, &conjs)
	}

	perTable := make([][]sql.Expr, len(ev.tables))
	type edge struct{ a, b *catalog.Column } // a on the earlier table
	var edges []edge
	for _, c := range conjs {
		ts := ev.conjTables(c)
		switch len(ts) {
		case 0:
			v, err := ev.eval(c, nil)
			if err != nil {
				return nil, err
			}
			if v == 0 {
				return nil, nil // constant-false WHERE
			}
		case 1:
			perTable[ts[0]] = append(perTable[ts[0]], c)
		case 2:
			b, ok := c.(*sql.Binary)
			if !ok || b.Op != sql.OpEq {
				return nil, fmt.Errorf("sqlcheck: unsupported cross-table predicate %s", sql.String(c))
			}
			lr, lok := b.L.(*sql.ColRef)
			rr, rok := b.R.(*sql.ColRef)
			if !lok || !rok {
				return nil, fmt.Errorf("sqlcheck: unsupported cross-table predicate %s", sql.String(c))
			}
			l, r := lr.Col, rr.Col
			if ev.tableIdx[l.Table] > ev.tableIdx[r.Table] {
				l, r = r, l
			}
			edges = append(edges, edge{a: l, b: r})
		default:
			return nil, fmt.Errorf("sqlcheck: predicate %s touches %d tables", sql.String(c), len(ts))
		}
	}

	// scanRows lists a table's row indexes passing its own filters.
	scanRows := func(ti int) ([]int32, error) {
		t := ev.tables[ti]
		var out []int32
		tup := make(tuple, len(ev.tables))
	rows:
		for i := 0; i < t.Rows(); i++ {
			tup[ti] = int32(i)
			for _, f := range perTable[ti] {
				v, err := ev.eval(f, tup)
				if err != nil {
					return nil, err
				}
				if v == 0 {
					continue rows
				}
			}
			out = append(out, int32(i))
		}
		return out, nil
	}

	first, err := scanRows(0)
	if err != nil {
		return nil, err
	}
	tuples := make([]tuple, len(first))
	for i, r := range first {
		tuples[i] = make(tuple, len(ev.tables))
		tuples[i][0] = r
	}

	for ti := 1; ti < len(ev.tables); ti++ {
		var own []edge // edges joining table ti to the joined prefix
		for _, e := range edges {
			if ev.tableIdx[e.b.Table] == ti && ev.tableIdx[e.a.Table] < ti {
				own = append(own, e)
			}
		}
		rows, err := scanRows(ti)
		if err != nil {
			return nil, err
		}
		var next []tuple
		if len(own) == 0 {
			// Cross join (the planner rejects these; the oracle stays
			// total for robustness, with a size guard).
			if len(tuples)*len(rows) > 4_000_000 {
				return nil, fmt.Errorf("sqlcheck: cross join of %d×%d tuples", len(tuples), len(rows))
			}
			for _, tp := range tuples {
				for _, r := range rows {
					nt := append(tuple(nil), tp...)
					nt[ti] = r
					next = append(next, nt)
				}
			}
		} else {
			// Hash table ti's rows on the first edge's own-side value,
			// verify remaining edges per candidate.
			key := own[0].b
			idx := map[int64][]int32{}
			for _, r := range rows {
				v, _ := baseValue(key, int(r))
				idx[v] = append(idx[v], r)
			}
			probe := own[0].a
		match:
			for _, tp := range tuples {
				pv, ok := baseValue(probe, int(tp[ev.tableIdx[probe.Table]]))
				if !ok {
					return nil, fmt.Errorf("sqlcheck: join key %s is not numeric", probe.Name)
				}
				for _, r := range idx[pv] {
					for _, e := range own[1:] {
						av, _ := baseValue(e.a, int(tp[ev.tableIdx[e.a.Table]]))
						bv, _ := baseValue(e.b, int(r))
						if av != bv {
							continue match
						}
					}
					nt := append(tuple(nil), tp...)
					nt[ti] = r
					next = append(next, nt)
				}
			}
		}
		tuples = next
	}

	// Belt and braces: the full WHERE must hold per tuple.
	if ev.sel.Where != nil {
		kept := tuples[:0]
		for _, tp := range tuples {
			v, err := ev.eval(ev.sel.Where, tp)
			if err != nil {
				return nil, err
			}
			if v != 0 {
				kept = append(kept, tp)
			}
		}
		tuples = kept
	}
	return tuples, nil
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

// baseValue reads one scalar (true signed value) from a base column.
func baseValue(c *catalog.Column, row int) (int64, bool) {
	rel := c.Table.Rel
	switch c.Type.Kind {
	case catalog.Int32:
		return int64(rel.Int32(c.Name)[row]), true
	case catalog.Int64:
		return rel.Int64(c.Name)[row], true
	case catalog.Numeric:
		return int64(rel.Numeric(c.Name)[row]), true
	case catalog.Date:
		return int64(rel.Date(c.Name)[row]), true
	case catalog.Byte:
		return int64(rel.Byte(c.Name)[row]), true
	}
	return 0, false
}

// strValue resolves a string operand for a tuple.
func (ev *oracle) strValue(e sql.Expr, tp tuple) ([]byte, bool) {
	switch x := e.(type) {
	case *sql.StrLit:
		return []byte(x.Val), true
	case *sql.ColRef:
		if x.Col.Type.Kind == catalog.String {
			row := int(tp[ev.tableIdx[x.Col.Table]])
			return x.Col.Table.Rel.String(x.Col.Name).Get(row), true
		}
	}
	return nil, false
}

// eval interprets an expression for one tuple. Aggregate calls are
// resolved by the grouped evaluator through lookup (nil elsewhere).
func (ev *oracle) eval(e sql.Expr, tp tuple) (int64, error) {
	return ev.evalWith(e, tp, nil)
}

func (ev *oracle) evalWith(e sql.Expr, tp tuple, lookup func(sql.Expr) (int64, bool)) (int64, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	if lookup != nil {
		if v, ok := lookup(e); ok {
			return v, nil
		}
	}
	switch x := e.(type) {
	case *sql.NumLit:
		return x.Val, nil
	case *sql.DateLit:
		return int64(x.Days), nil
	case *sql.ColRef:
		if v, ok := baseValue(x.Col, int(tp[ev.tableIdx[x.Col.Table]])); ok {
			return v, nil
		}
		return 0, fmt.Errorf("sqlcheck: cannot evaluate column %q", x.Name)
	case *sql.Not:
		v, err := ev.evalWith(x.X, tp, lookup)
		if err != nil {
			return 0, err
		}
		return b2i(v == 0), nil
	case *sql.Between:
		v, err := ev.evalWith(x.X, tp, lookup)
		if err != nil {
			return 0, err
		}
		lo, err := ev.evalWith(x.Lo, tp, lookup)
		if err != nil {
			return 0, err
		}
		hi, err := ev.evalWith(x.Hi, tp, lookup)
		if err != nil {
			return 0, err
		}
		return b2i((v >= lo && v <= hi) != x.Negate), nil
	case *sql.InList:
		if sv, ok := ev.strValue(x.X, tp); ok {
			found := false
			for _, l := range x.List {
				lv, ok := ev.strValue(l, tp)
				if !ok {
					return 0, fmt.Errorf("sqlcheck: cannot evaluate %s", sql.String(l))
				}
				if bytes.Equal(sv, lv) {
					found = true
					break
				}
			}
			return b2i(found != x.Negate), nil
		}
		v, err := ev.evalWith(x.X, tp, lookup)
		if err != nil {
			return 0, err
		}
		found := false
		for _, l := range x.List {
			lv, err := ev.evalWith(l, tp, lookup)
			if err != nil {
				return 0, err
			}
			if lv == v {
				found = true
				break
			}
		}
		return b2i(found != x.Negate), nil
	case *sql.Binary:
		if x.Op == sql.OpEq || x.Op == sql.OpNe {
			if lv, ok := ev.strValue(x.L, tp); ok {
				rv, ok := ev.strValue(x.R, tp)
				if !ok {
					return 0, fmt.Errorf("sqlcheck: cannot evaluate %s", sql.String(x.R))
				}
				return b2i(bytes.Equal(lv, rv) == (x.Op == sql.OpEq)), nil
			}
		}
		l, err := ev.evalWith(x.L, tp, lookup)
		if err != nil {
			return 0, err
		}
		if x.Op == sql.OpAnd && l == 0 {
			return 0, nil
		}
		if x.Op == sql.OpOr && l != 0 {
			return 1, nil
		}
		r, err := ev.evalWith(x.R, tp, lookup)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case sql.OpAdd:
			return l + r, nil
		case sql.OpSub:
			return l - r, nil
		case sql.OpMul:
			return l * r, nil
		case sql.OpEq:
			return b2i(l == r), nil
		case sql.OpNe:
			return b2i(l != r), nil
		case sql.OpLt:
			return b2i(l < r), nil
		case sql.OpLe:
			return b2i(l <= r), nil
		case sql.OpGt:
			return b2i(l > r), nil
		case sql.OpGe:
			return b2i(l >= r), nil
		case sql.OpAnd, sql.OpOr:
			return b2i(r != 0), nil
		}
	}
	return 0, fmt.Errorf("sqlcheck: cannot evaluate %s", sql.String(e))
}

// ---------------------------------------------------------------------
// Grouping, projection, ordering
// ---------------------------------------------------------------------

// aggState accumulates one aggregate over a group.
type aggState struct {
	src      *sql.Agg
	sum, cnt int64
	min, max int64
}

// group is one grouping-key equivalence class.
type group struct {
	first tuple // first tuple seen (resolves bare column references)
	aggs  []aggState
	n     int64
}

// collectAggs gathers the distinct aggregate calls of the statement.
func (ev *oracle) collectAggs() []*sql.Agg {
	var out []*sql.Agg
	add := func(a *sql.Agg) {
		for _, x := range out {
			if sql.Equal(x, a) {
				return
			}
		}
		out = append(out, a)
	}
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.Agg:
			add(x)
		case *sql.Binary:
			walk(x.L)
			walk(x.R)
		case *sql.Not:
			walk(x.X)
		case *sql.Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sql.InList:
			walk(x.X)
			for _, l := range x.List {
				walk(l)
			}
		}
	}
	for _, it := range ev.sel.Items {
		walk(it.Expr)
	}
	if ev.sel.Having != nil {
		walk(ev.sel.Having)
	}
	for _, o := range ev.sel.OrderBy {
		if o.Item < 0 {
			walk(o.Expr)
		}
	}
	return out
}

// grouped evaluates an aggregated query: group tuples by the GROUP BY
// values, fold every aggregate, filter by HAVING, project the items,
// order and limit.
func (ev *oracle) grouped(tuples []tuple) ([][]int64, error) {
	aggs := ev.collectAggs()
	groups := map[string]*group{}
	var order []string

	keyBuf := make([]byte, 0, 64)
	for _, tp := range tuples {
		keyBuf = keyBuf[:0]
		for _, g := range ev.sel.GroupBy {
			v, err := ev.eval(g, tp)
			if err != nil {
				return nil, err
			}
			for s := 0; s < 64; s += 8 {
				keyBuf = append(keyBuf, byte(uint64(v)>>s))
			}
		}
		k := string(keyBuf)
		gr := groups[k]
		if gr == nil {
			gr = &group{first: append(tuple(nil), tp...), aggs: make([]aggState, len(aggs))}
			for i, a := range aggs {
				gr.aggs[i].src = a
			}
			groups[k] = gr
			order = append(order, k)
		}
		gr.n++
		for i, a := range aggs {
			st := &gr.aggs[i]
			if a.Star || a.Fn == sql.AggCount {
				st.cnt++ // the engines have no NULL: COUNT(expr) = COUNT(*)
				continue
			}
			v, err := ev.eval(a.Arg, tp)
			if err != nil {
				return nil, err
			}
			st.cnt++
			st.sum += v
			if gr.n == 1 || v < st.min {
				st.min = v
			}
			if gr.n == 1 || v > st.max {
				st.max = v
			}
		}
	}

	// A global aggregate yields exactly one row even on empty input,
	// with every aggregate zero (matching logical.MergeGlobal); HAVING,
	// ORDER BY and LIMIT still apply to it.
	if len(ev.sel.GroupBy) == 0 && len(order) == 0 {
		zero := func(e sql.Expr) (int64, bool) {
			_, ok := e.(*sql.Agg)
			return 0, ok
		}
		if ev.sel.Having != nil {
			v, err := ev.evalWith(ev.sel.Having, nil, zero)
			if err != nil {
				return nil, err
			}
			if v == 0 {
				return nil, nil
			}
		}
		row := make([]int64, len(ev.sel.Items))
		for i, it := range ev.sel.Items {
			v, err := ev.evalWith(it.Expr, nil, zero)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		sv := make([]int64, len(ev.sel.OrderBy))
		for i, o := range ev.sel.OrderBy {
			if o.Item >= 0 {
				sv[i] = row[o.Item]
				continue
			}
			v, err := ev.evalWith(o.Expr, nil, zero)
			if err != nil {
				return nil, err
			}
			sv[i] = v
		}
		return ev.finish([][]int64{row}, [][]int64{sv})
	}

	aggValue := func(gr *group, a *sql.Agg) int64 {
		for i := range gr.aggs {
			if sql.Equal(gr.aggs[i].src, a) {
				st := &gr.aggs[i]
				switch {
				case a.Star || a.Fn == sql.AggCount:
					return st.cnt
				case a.Fn == sql.AggSum:
					return st.sum
				case a.Fn == sql.AggMin:
					return st.min
				default:
					return st.max
				}
			}
		}
		panic("sqlcheck: uncollected aggregate")
	}
	lookupFor := func(gr *group) func(sql.Expr) (int64, bool) {
		return func(e sql.Expr) (int64, bool) {
			if a, ok := e.(*sql.Agg); ok {
				return aggValue(gr, a), true
			}
			return 0, false
		}
	}

	var rows [][]int64
	var sortVals [][]int64
	nOrder := len(ev.sel.OrderBy)
	for _, k := range order {
		gr := groups[k]
		if ev.sel.Having != nil {
			v, err := ev.evalWith(ev.sel.Having, gr.first, lookupFor(gr))
			if err != nil {
				return nil, err
			}
			if v == 0 {
				continue
			}
		}
		row := make([]int64, len(ev.sel.Items))
		for i, it := range ev.sel.Items {
			v, err := ev.evalWith(it.Expr, gr.first, lookupFor(gr))
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		sv := make([]int64, nOrder)
		for i, o := range ev.sel.OrderBy {
			if o.Item >= 0 {
				sv[i] = row[o.Item]
				continue
			}
			v, err := ev.evalWith(o.Expr, gr.first, lookupFor(gr))
			if err != nil {
				return nil, err
			}
			sv[i] = v
		}
		rows = append(rows, row)
		sortVals = append(sortVals, sv)
	}
	return ev.finish(rows, sortVals)
}

// project evaluates a plain projection query.
func (ev *oracle) project(tuples []tuple) ([][]int64, error) {
	var rows [][]int64
	var sortVals [][]int64
	nOrder := len(ev.sel.OrderBy)
	for _, tp := range tuples {
		row := make([]int64, len(ev.sel.Items))
		for i, it := range ev.sel.Items {
			v, err := ev.eval(it.Expr, tp)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		sv := make([]int64, nOrder)
		for i, o := range ev.sel.OrderBy {
			if o.Item >= 0 {
				sv[i] = row[o.Item]
				continue
			}
			matched := false
			for j, it := range ev.sel.Items {
				if sql.Equal(o.Expr, it.Expr) {
					sv[i] = row[j]
					matched = true
					break
				}
			}
			if !matched {
				v, err := ev.eval(o.Expr, tp)
				if err != nil {
					return nil, err
				}
				sv[i] = v
			}
		}
		rows = append(rows, row)
		sortVals = append(sortVals, sv)
	}
	return ev.finish(rows, sortVals)
}

// finish orders and limits the produced rows.
func (ev *oracle) finish(rows, sortVals [][]int64) ([][]int64, error) {
	if len(ev.sel.OrderBy) > 0 {
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for k, o := range ev.sel.OrderBy {
				av, bv := sortVals[idx[a]][k], sortVals[idx[b]][k]
				if av == bv {
					continue
				}
				if o.Desc {
					return av > bv
				}
				return av < bv
			}
			return false
		})
		ordered := make([][]int64, len(rows))
		for i, j := range idx {
			ordered[i] = rows[j]
		}
		rows = ordered
	}
	if ev.sel.Limit >= 0 && len(rows) > ev.sel.Limit {
		rows = rows[:ev.sel.Limit]
	}
	return rows, nil
}
