package sqlcheck

import (
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// Schema-compatible mini databases with hand-picked values — the shared
// substrate of the edge-case suites (empty relations, all-false filter
// cascades, zero-group aggregations) run against the operator layer,
// the compiled backend, and the reference oracles.

// MiniTPCH builds a schema-compatible TPC-H instance. n is the
// lineitem/orders/customer cardinality; qualify controls whether any
// row passes the benchmark queries' predicates.
func MiniTPCH(n int, qualify bool) *storage.Database {
	db := storage.NewDatabase("tpch", 0)

	seg := "AUTOMOBILE"
	if qualify {
		seg = queries.Q3Segment
	}
	region := storage.NewRelation("region")
	rname := storage.NewStringHeap(1, 8)
	if qualify {
		rname.AppendString(queries.Q5Region)
	} else {
		rname.AppendString("EUROPE")
	}
	region.AddInt32("r_regionkey", []int32{0})
	region.AddString("r_name", rname)
	db.Add(region)

	nation := storage.NewRelation("nation")
	nation.AddInt32("n_nationkey", []int32{0, 1})
	nh := storage.NewStringHeap(2, 8)
	nh.AppendString("ALPHA")
	nh.AppendString("BETA")
	nation.AddString("n_name", nh)
	nation.AddInt32("n_regionkey", []int32{0, 0})
	db.Add(nation)

	supp := storage.NewRelation("supplier")
	sk := make([]int32, max(1, n/10))
	snat := make([]int32, len(sk))
	for i := range sk {
		sk[i] = int32(i + 1)
		snat[i] = int32(i % 2)
	}
	supp.AddInt32("s_suppkey", sk)
	supp.AddInt32("s_nationkey", snat)
	db.Add(supp)

	cust := storage.NewRelation("customer")
	ck := make([]int32, n)
	cnat := make([]int32, n)
	segs := storage.NewStringHeap(n, 10)
	for i := 0; i < n; i++ {
		ck[i] = int32(i + 1)
		cnat[i] = int32(i % 2)
		segs.AppendString(seg)
	}
	cust.AddInt32("c_custkey", ck)
	cust.AddInt32("c_nationkey", cnat)
	cust.AddString("c_mktsegment", segs)
	db.Add(cust)

	ord := storage.NewRelation("orders")
	ok := make([]int32, n)
	ocust := make([]int32, n)
	odate := make([]types.Date, n)
	oprio := make([]int32, n)
	ototal := make([]types.Numeric, n)
	date := queries.Q3Date - 10 // qualifies for Q3/Q5 windows
	if !qualify {
		date = queries.Q3Date + 1000
	}
	for i := 0; i < n; i++ {
		ok[i] = int32(i + 1)
		ocust[i] = int32(i%n + 1)
		odate[i] = date
		oprio[i] = int32(i)
		ototal[i] = types.Numeric(int64(i+1) * 100)
	}
	ord.AddInt32("o_orderkey", ok)
	ord.AddInt32("o_custkey", ocust)
	ord.AddDate("o_orderdate", odate)
	ord.AddInt32("o_shippriority", oprio)
	ord.AddNumeric("o_totalprice", ototal)
	db.Add(ord)

	li := storage.NewRelation("lineitem")
	lok := make([]int32, n)
	lsk := make([]int32, n)
	lship := make([]types.Date, n)
	lqty := make([]types.Numeric, n)
	lext := make([]types.Numeric, n)
	ldisc := make([]types.Numeric, n)
	ship := queries.Q6DateLo + 5
	qty := types.Numeric(10 * types.NumericScale) // < Q6's 24, < 300 HAVING
	if !qualify {
		ship = queries.Q6DateLo - 1000 // outside every date window
	}
	for i := 0; i < n; i++ {
		lok[i] = int32(i + 1)
		lsk[i] = sk[i%len(sk)]
		lship[i] = ship
		lqty[i] = qty
		lext[i] = types.Numeric(int64(i+1) * 100)
		ldisc[i] = queries.Q6DiscLo
	}
	li.AddInt32("l_orderkey", lok)
	li.AddInt32("l_suppkey", lsk)
	li.AddDate("l_shipdate", lship)
	li.AddNumeric("l_quantity", lqty)
	li.AddNumeric("l_extendedprice", lext)
	li.AddNumeric("l_discount", ldisc)
	db.Add(li)
	return db
}

// MiniSSB builds a schema-compatible SSB instance covering Q1.1 and
// Q2.1.
func MiniSSB(n int, qualify bool) *storage.Database {
	db := storage.NewDatabase("ssb", 0)

	cat := int32(99)
	if qualify {
		cat = queries.SSBQ21Categ
	}
	part := storage.NewRelation("part")
	pk := make([]int32, max(1, n/10))
	pcat := make([]int32, len(pk))
	pbrand := make([]int32, len(pk))
	for i := range pk {
		pk[i] = int32(i + 1)
		pcat[i] = cat
		pbrand[i] = int32(i%4 + 1)
	}
	part.AddInt32("p_partkey", pk)
	part.AddInt32("p_category", pcat)
	part.AddInt32("p_brand1", pbrand)
	db.Add(part)

	supp := storage.NewRelation("supplier")
	sk := []int32{1, 2}
	supp.AddInt32("s_suppkey", sk)
	supp.AddInt32("s_region", []int32{queries.SSBQ21Region, queries.SSBQ21Region})
	db.Add(supp)

	date := storage.NewRelation("date")
	dk := []types.Date{types.MakeDate(1993, 1, 1), types.MakeDate(1994, 1, 1)}
	date.AddDate("d_datekey", dk)
	date.AddInt32("d_year", []int32{1993, 1994})
	db.Add(date)

	lo := storage.NewRelation("lineorder")
	lopk := make([]int32, n)
	losk := make([]int32, n)
	lod := make([]types.Date, n)
	rev := make([]types.Numeric, n)
	qty := make([]types.Numeric, n)
	ext := make([]types.Numeric, n)
	disc := make([]types.Numeric, n)
	dv := types.Numeric(2) // lo_discount is scale 0: within Q1.1's 1..3
	if !qualify {
		dv = 9
	}
	for i := 0; i < n; i++ {
		lopk[i] = pk[i%len(pk)]
		losk[i] = sk[i%len(sk)]
		lod[i] = dk[i%len(dk)]
		rev[i] = types.Numeric(int64(i+1) * 10)
		qty[i] = types.Numeric(10 * types.NumericScale) // < Q1.1's 25
		ext[i] = types.Numeric(int64(i+1) * 100)
		disc[i] = dv
	}
	lo.AddInt32("lo_partkey", lopk)
	lo.AddInt32("lo_suppkey", losk)
	lo.AddDate("lo_orderdate", lod)
	lo.AddNumeric("lo_quantity", qty)
	lo.AddNumeric("lo_extendedprice", ext)
	lo.AddNumeric("lo_discount", disc)
	lo.AddNumeric("lo_revenue", rev)
	db.Add(lo)
	return db
}

// EmptyMinis returns TPC-H and SSB instances whose base relations all
// have zero rows — every scan yields no morsel at all.
func EmptyMinis() (*storage.Database, *storage.Database) {
	tp := MiniTPCH(1, true)
	sb := MiniSSB(1, true)
	et := storage.NewDatabase("tpch", 0)
	es := storage.NewDatabase("ssb", 0)
	for _, name := range []string{"region", "nation", "supplier", "customer", "orders", "lineitem"} {
		et.Add(truncated(tp.Rel(name)))
	}
	for _, name := range []string{"part", "supplier", "date", "lineorder"} {
		es.Add(truncated(sb.Rel(name)))
	}
	return et, es
}

// truncated clones a relation's schema with zero rows.
func truncated(r *storage.Relation) *storage.Relation {
	out := storage.NewRelation(r.Name)
	for _, c := range r.Columns() {
		switch c.Type {
		case storage.Int32:
			out.AddInt32(c.Name, nil)
		case storage.Int64:
			out.AddInt64(c.Name, nil)
		case storage.Numeric:
			out.AddNumeric(c.Name, nil)
		case storage.Date:
			out.AddDate(c.Name, nil)
		case storage.Byte:
			out.AddByte(c.Name, nil)
		case storage.String:
			out.AddString(c.Name, storage.NewStringHeap(0, 0))
		}
	}
	return out
}
