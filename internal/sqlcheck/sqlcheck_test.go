package sqlcheck

import (
	"math/rand"
	"sync"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/ssb"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"
)

var (
	genOnce sync.Once
	genTPCH *storage.Database
	genSSB  *storage.Database
)

func genDBs() (*storage.Database, *storage.Database) {
	genOnce.Do(func() {
		genTPCH = tpch.Generate(0.01, 0)
		genSSB = ssb.Generate(0.01, 0)
	})
	return genTPCH, genSSB
}

// TestOracleMatchesHandOracles: the naive SQL oracle agrees with the
// repo's hand-written reference oracles on the canonical benchmark
// texts — the oracle's own trust anchor.
func TestOracleMatchesHandOracles(t *testing.T) {
	tp, sb := genDBs()
	for _, db := range []*storage.Database{tp, sb} {
		for _, name := range logical.SQLQueries(db.Name) {
			text, _ := logical.SQLText(db.Name, name)
			got, err := Oracle(db, text)
			if err != nil {
				t.Fatalf("%s/%s: %v", db.Name, name, err)
			}
			want := RefRows(db, name)
			if !SameRows(Canon(got), Canon(want)) {
				t.Errorf("%s/%s: oracle mismatch\n got %v\nwant %v", db.Name, name, head(got), head(want))
			}
		}
	}
}

// TestGeneratorPlans: every generated query in a 300-seed sweep parses,
// binds, and plans — generator output stays inside the planner's
// supported subset, so a corpus failure always means an executor bug,
// not a rejected query.
func TestGeneratorPlans(t *testing.T) {
	tp, sb := genDBs()
	for seed := int64(0); seed < 300; seed++ {
		db := tp
		if seed%2 == 1 {
			db = sb
		}
		text := Generate(rand.New(rand.NewSource(seed)), db)
		if _, err := logical.Prepare(db, text); err != nil {
			t.Errorf("seed %d: %q does not plan: %v", seed, text, err)
		}
	}
}

// TestGeneratorDeterministic: the same seed yields the same SQL text.
func TestGeneratorDeterministic(t *testing.T) {
	tp, _ := genDBs()
	a := Generate(rand.New(rand.NewSource(7)), tp)
	b := Generate(rand.New(rand.NewSource(7)), tp)
	if a != b {
		t.Errorf("seed 7 produced different texts:\n%s\n%s", a, b)
	}
}

func head(rows [][]int64) [][]int64 {
	if len(rows) > 6 {
		return rows[:6]
	}
	return rows
}
