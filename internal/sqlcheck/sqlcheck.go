// Package sqlcheck is the differential-testing toolkit of the ad-hoc
// SQL subsystem — a test-support extension beyond the paper's fixed
// query catalog. It supplies the three ingredients of the cross-engine
// differential harness: a seeded random SQL generator over the catalog
// schemas (Generate), a trusted slow oracle that evaluates a bound
// SELECT naively and independently of both lowering backends (Oracle),
// and schema-compatible mini databases with hand-picked edge-case
// values (MiniTPCH, MiniSSB, EmptyMinis) shared by the operator-layer
// and compiled-backend edge tests. The package deliberately imports
// neither internal/plan nor internal/logical, so any package's tests —
// including theirs — can use it without import cycles; the harness that
// actually runs the two engines lives with the repo-root tests.
package sqlcheck

import (
	"sort"
	"sync"

	"paradigms/internal/catalog"
	"paradigms/internal/storage"
)

// catalogs caches one derived catalog per database (the package cannot
// use internal/logical's cache without creating an import cycle).
var catalogs sync.Map // *storage.Database → *catalog.Catalog

// catFor returns (building on first use) the catalog of a database.
func catFor(db *storage.Database) *catalog.Catalog {
	if c, ok := catalogs.Load(db); ok {
		return c.(*catalog.Catalog)
	}
	c, _ := catalogs.LoadOrStore(db, catalog.FromDatabase(db))
	return c.(*catalog.Catalog)
}

// Canon sorts result rows lexicographically — the multiset-comparison
// form of the differential harness. Engines may emit rows in any order
// (morsel races, group-hash order); under a total-order ORDER BY plus
// LIMIT the surviving multiset is deterministic, and without LIMIT the
// multiset is the full result — so canonical equality is exactly the
// invariant every backend must satisfy.
func Canon(rows [][]int64) [][]int64 {
	out := make([][]int64, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// SameRows reports whether two canonicalized row sets are identical.
func SameRows(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
