package sqlcheck

import (
	"paradigms/internal/queries"
	"paradigms/internal/storage"
)

// RefRows converts a hand-written reference-oracle result into the SQL
// subsystem's raw row representation (logical.Result.Rows layout) for
// bit-exact comparison — the one mapping shared by every parity test of
// the canonical benchmark texts.
func RefRows(db *storage.Database, name string) [][]int64 {
	switch name {
	case "Q6":
		return [][]int64{{int64(queries.RefQ6(db))}}
	case "Q3":
		var out [][]int64
		for _, r := range queries.RefQ3(db) {
			out = append(out, []int64{int64(r.OrderKey), r.Revenue, int64(r.OrderDate), int64(r.ShipPriority)})
		}
		return out
	case "Q5":
		var out [][]int64
		for _, r := range queries.RefQ5(db) {
			out = append(out, []int64{int64(r.Nation), r.Revenue})
		}
		return out
	case "Q18":
		var out [][]int64
		for _, r := range queries.RefQ18(db) {
			out = append(out, []int64{int64(r.CustKey), int64(r.OrderKey), int64(r.OrderDate), int64(r.TotalPrice), r.SumQty})
		}
		return out
	case "Q1.1":
		return [][]int64{{int64(queries.RefSSBQ11(db))}}
	case "Q2.1":
		var out [][]int64
		for _, r := range queries.RefSSBQ21(db) {
			out = append(out, []int64{int64(r.Year), int64(r.Brand), r.Revenue})
		}
		return out
	}
	panic("sqlcheck: no reference for " + name)
}
