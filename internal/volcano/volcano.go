// Package volcano implements the traditional tuple-at-a-time interpreted
// execution model (System R / Volcano, Table 6 row 1 of the paper) as a
// baseline: each operator exposes a virtual Next() that produces one
// tuple, predicates and expressions are interpreted closures, and every
// tuple crosses several interface calls.
//
// The paper's motivation (§1) is that this model "is inefficient on
// modern CPUs" — HyPer-vs-PostgreSQL gaps of one to two orders of
// magnitude. This package makes that claim measurable inside the same
// test system: the `volcano` ablation benchmarks run the same plans as
// the two modern engines. It is intentionally a faithful classic design,
// not a strawman: column values are fetched lazily by position, no
// per-tuple allocation happens on the hot path, and the hash aggregation
// reuses Go's map (an interpreter would use an equivalent generic
// structure).
package volcano

import (
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// Tuple is the interpreted row representation: one int64-encoded value
// per plan column. (Strings are pre-resolved to codes by the plan, as a
// classic executor's expression evaluator would dictionary-code them.)
type Tuple []int64

// Operator is the Volcano iterator interface.
type Operator interface {
	// Open resets the operator tree.
	Open()
	// Next returns the next tuple, or false when exhausted. The returned
	// tuple is only valid until the following call.
	Next() (Tuple, bool)
}

// TableScan yields one tuple per row, materializing the configured
// columns through per-column getter closures — the classic type-dispatch
// cost paid once per tuple per column.
type TableScan struct {
	rows int
	cols []func(i int) int64
	pos  int
	out  Tuple
}

// NewTableScan builds a scan over rows with the given column getters.
func NewTableScan(rows int, cols ...func(i int) int64) *TableScan {
	return &TableScan{rows: rows, cols: cols, out: make(Tuple, len(cols))}
}

// Open implements Operator.
func (s *TableScan) Open() { s.pos = 0 }

// Next implements Operator.
func (s *TableScan) Next() (Tuple, bool) {
	if s.pos >= s.rows {
		return nil, false
	}
	i := s.pos
	s.pos++
	for c, get := range s.cols {
		s.out[c] = get(i)
	}
	return s.out, true
}

// Select filters tuples with an interpreted predicate.
type Select struct {
	child Operator
	pred  func(Tuple) bool
}

// NewSelect wraps child with a predicate.
func NewSelect(child Operator, pred func(Tuple) bool) *Select {
	return &Select{child: child, pred: pred}
}

// Open implements Operator.
func (s *Select) Open() { s.child.Open() }

// Next implements Operator.
func (s *Select) Next() (Tuple, bool) {
	for {
		t, ok := s.child.Next()
		if !ok {
			return nil, false
		}
		if s.pred(t) {
			return t, true
		}
	}
}

// Project computes derived columns with interpreted expressions.
type Project struct {
	child Operator
	exprs []func(Tuple) int64
	out   Tuple
}

// NewProject wraps child with expression closures.
func NewProject(child Operator, exprs ...func(Tuple) int64) *Project {
	return &Project{child: child, exprs: exprs, out: make(Tuple, len(exprs))}
}

// Open implements Operator.
func (p *Project) Open() { p.child.Open() }

// Next implements Operator.
func (p *Project) Next() (Tuple, bool) {
	t, ok := p.child.Next()
	if !ok {
		return nil, false
	}
	for i, e := range p.exprs {
		p.out[i] = e(t)
	}
	return p.out, true
}

// HashJoin is a blocking-build, streaming-probe equi-join on one key
// column per side; build tuples are copied into the table.
type HashJoin struct {
	build    Operator
	probe    Operator
	buildKey int
	probeKey int
	table    map[int64][]Tuple
	pending  []Tuple
	cur      Tuple
	out      Tuple
	built    bool
}

// NewHashJoin joins build and probe children on tuple columns.
func NewHashJoin(build, probe Operator, buildKey, probeKey int) *HashJoin {
	return &HashJoin{build: build, probe: probe, buildKey: buildKey, probeKey: probeKey}
}

// Open implements Operator.
func (j *HashJoin) Open() {
	j.build.Open()
	j.probe.Open()
	j.table = nil
	j.built = false
	j.pending = nil
}

// Next implements Operator.
func (j *HashJoin) Next() (Tuple, bool) {
	if !j.built {
		j.table = make(map[int64][]Tuple)
		for {
			t, ok := j.build.Next()
			if !ok {
				break
			}
			cp := make(Tuple, len(t))
			copy(cp, t)
			j.table[t[j.buildKey]] = append(j.table[t[j.buildKey]], cp)
		}
		j.built = true
	}
	for {
		if len(j.pending) > 0 {
			b := j.pending[0]
			j.pending = j.pending[1:]
			j.out = j.out[:0]
			j.out = append(j.out, j.cur...)
			j.out = append(j.out, b...)
			return j.out, true
		}
		t, ok := j.probe.Next()
		if !ok {
			return nil, false
		}
		if matches, hit := j.table[t[j.probeKey]]; hit {
			if j.cur == nil || len(j.cur) != len(t) {
				j.cur = make(Tuple, len(t))
			}
			copy(j.cur, t)
			j.pending = matches
		}
	}
}

// HashAggregate is a blocking group-by with interpreted key and sum
// aggregates.
type HashAggregate struct {
	child   Operator
	keyCols []int
	aggCols []int
	groups  map[string]*aggState
	order   []string
	pos     int
	out     Tuple
	keyBuf  []byte
}

type aggState struct {
	key   []int64
	sums  []int64
	count int64
}

// NewHashAggregate groups child by keyCols, summing aggCols.
func NewHashAggregate(child Operator, keyCols, aggCols []int) *HashAggregate {
	return &HashAggregate{child: child, keyCols: keyCols, aggCols: aggCols}
}

// Open implements Operator.
func (a *HashAggregate) Open() {
	a.child.Open()
	a.groups = nil
	a.order = nil
	a.pos = 0
}

// Next implements Operator. Output layout: key columns, sums, count.
func (a *HashAggregate) Next() (Tuple, bool) {
	if a.groups == nil {
		a.groups = make(map[string]*aggState)
		for {
			t, ok := a.child.Next()
			if !ok {
				break
			}
			a.keyBuf = a.keyBuf[:0]
			for _, k := range a.keyCols {
				v := uint64(t[k])
				for s := 0; s < 64; s += 8 {
					a.keyBuf = append(a.keyBuf, byte(v>>s))
				}
			}
			key := string(a.keyBuf)
			g := a.groups[key]
			if g == nil {
				g = &aggState{key: make([]int64, len(a.keyCols)), sums: make([]int64, len(a.aggCols))}
				for i, k := range a.keyCols {
					g.key[i] = t[k]
				}
				a.groups[key] = g
				a.order = append(a.order, key)
			}
			for i, c := range a.aggCols {
				g.sums[i] += t[c]
			}
			g.count++
		}
		a.out = make(Tuple, len(a.keyCols)+len(a.aggCols)+1)
	}
	if a.pos >= len(a.order) {
		return nil, false
	}
	g := a.groups[a.order[a.pos]]
	a.pos++
	n := copy(a.out, g.key)
	n += copy(a.out[n:], g.sums)
	a.out[n] = g.count
	return a.out, true
}

// ---------------------------------------------------------------------
// Queries (same plans as the modern engines, interpreted).
// ---------------------------------------------------------------------

// Q6 executes TPC-H Q6 in the Volcano model.
func Q6(db *storage.Database) queries.Q6Result {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	scan := NewTableScan(li.Rows(),
		func(i int) int64 { return int64(ship[i]) },
		func(i int) int64 { return int64(qty[i]) },
		func(i int) int64 { return int64(ext[i]) },
		func(i int) int64 { return int64(disc[i]) },
	)
	sel := NewSelect(scan, func(t Tuple) bool {
		return t[0] >= int64(queries.Q6DateLo) && t[0] < int64(queries.Q6DateHi) &&
			t[3] >= int64(queries.Q6DiscLo) && t[3] <= int64(queries.Q6DiscHi) &&
			t[1] < int64(queries.Q6Quantity)
	})
	proj := NewProject(sel, func(t Tuple) int64 { return t[2] * t[3] })
	proj.Open()
	var sum int64
	for {
		t, ok := proj.Next()
		if !ok {
			break
		}
		sum += t[0]
	}
	return queries.Q6Result(sum)
}

// Q1 executes TPC-H Q1 in the Volcano model.
func Q1(db *storage.Database) queries.Q1Result {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")
	scan := NewTableScan(li.Rows(),
		func(i int) int64 { return int64(ship[i]) },
		func(i int) int64 { return int64(rf[i])<<8 | int64(ls[i]) },
		func(i int) int64 { return int64(qty[i]) },
		func(i int) int64 { return int64(ext[i]) },
		func(i int) int64 { return int64(disc[i]) },
		func(i int) int64 { return int64(tax[i]) },
	)
	sel := NewSelect(scan, func(t Tuple) bool { return t[0] <= int64(queries.Q1Cutoff) })
	proj := NewProject(sel,
		func(t Tuple) int64 { return t[1] },                               // group key
		func(t Tuple) int64 { return t[2] },                               // qty
		func(t Tuple) int64 { return t[3] },                               // base
		func(t Tuple) int64 { return t[3] * (100 - t[4]) },                // disc price
		func(t Tuple) int64 { return t[3] * (100 - t[4]) * (100 + t[5]) }, // charge
		func(t Tuple) int64 { return t[4] },                               // discount
	)
	agg := NewHashAggregate(proj, []int{0}, []int{1, 2, 3, 4, 5})
	agg.Open()
	var out queries.Q1Result
	for {
		t, ok := agg.Next()
		if !ok {
			break
		}
		out = append(out, queries.Q1Row{
			ReturnFlag: byte(t[0] >> 8),
			LineStatus: byte(t[0]),
			SumQty:     t[1],
			SumBase:    t[2],
			SumDisc:    t[3],
			SumCharge:  t[4],
			SumDiscnt:  t[5],
			Count:      t[6],
		})
	}
	queries.SortQ1(out)
	return out
}

// Q3 executes TPC-H Q3 in the Volcano model.
func Q3(db *storage.Database) queries.Q3Result {
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	ckeys := cust.Int32("c_custkey")
	isBuilding := make([]int64, cust.Rows())
	for i := range isBuilding {
		if string(seg.Get(i)) == queries.Q3Segment {
			isBuilding[i] = 1
		}
	}
	custScan := NewTableScan(cust.Rows(),
		func(i int) int64 { return int64(ckeys[i]) },
		func(i int) int64 { return isBuilding[i] },
	)
	custSel := NewSelect(custScan, func(t Tuple) bool { return t[1] == 1 })

	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	oprio := ord.Int32("o_shippriority")
	ordScan := NewTableScan(ord.Rows(),
		func(i int) int64 { return int64(okeys[i]) },
		func(i int) int64 { return int64(ocust[i]) },
		func(i int) int64 { return int64(odate[i]) },
		func(i int) int64 { return int64(oprio[i]) },
	)
	ordSel := NewSelect(ordScan, func(t Tuple) bool { return t[2] < int64(queries.Q3Date) })
	// customer(0:key,1:flag) ⋈ orders: probe=orders on custkey col 1.
	join1 := NewHashJoin(custSel, ordSel, 0, 1)
	// join1 output: orders cols 0..3, then customer cols 4..5.

	li := db.Rel("lineitem")
	lkeys := li.Int32("l_orderkey")
	lship := li.Date("l_shipdate")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	liScan := NewTableScan(li.Rows(),
		func(i int) int64 { return int64(lkeys[i]) },
		func(i int) int64 { return int64(lship[i]) },
		func(i int) int64 { return int64(lext[i]) },
		func(i int) int64 { return int64(ldisc[i]) },
	)
	liSel := NewSelect(liScan, func(t Tuple) bool { return t[1] > int64(queries.Q3Date) })
	// (join1 as build keyed on o_orderkey col 0) ⋈ lineitem on l_orderkey.
	join2 := NewHashJoin(join1, liSel, 0, 0)
	// join2 output: lineitem 0..3, join1 4..9 (orders 4..7, customer 8..9).

	proj := NewProject(join2,
		func(t Tuple) int64 { return t[0] },                // orderkey
		func(t Tuple) int64 { return t[2] * (100 - t[3]) }, // revenue
		func(t Tuple) int64 { return t[6] },                // orderdate
		func(t Tuple) int64 { return t[7] },                // shippriority
	)
	agg := NewHashAggregate(proj, []int{0, 2, 3}, []int{1})
	agg.Open()
	top := queries.NewTopK[queries.Q3Row](10, queries.Q3Less)
	for {
		t, ok := agg.Next()
		if !ok {
			break
		}
		top.Offer(queries.Q3Row{
			OrderKey:     int32(t[0]),
			Revenue:      t[3],
			OrderDate:    types.Date(t[1]),
			ShipPriority: int32(t[2]),
		})
	}
	return top.Sorted()
}
