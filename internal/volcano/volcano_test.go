package volcano

import (
	"reflect"
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/tpch"
)

func TestVolcanoMatchesReference(t *testing.T) {
	for _, sf := range []float64{0.01, 0.05} {
		db := tpch.Generate(sf, 0)
		if got, want := Q6(db), queries.RefQ6(db); got != want {
			t.Errorf("sf=%v Q6 = %d, want %d", sf, got, want)
		}
		if got, want := Q1(db), queries.RefQ1(db); !reflect.DeepEqual(got, want) {
			t.Errorf("sf=%v Q1 mismatch:\n got %v\nwant %v", sf, got, want)
		}
		if got, want := Q3(db), queries.RefQ3(db); !reflect.DeepEqual(got, want) {
			t.Errorf("sf=%v Q3 mismatch:\n got %v\nwant %v", sf, got, want)
		}
	}
}

func TestOperatorsComposable(t *testing.T) {
	// A tiny hand-built pipeline: scan [0..9] → keep even → square → sum
	// groups by parity (single group).
	scan := NewTableScan(10, func(i int) int64 { return int64(i) })
	sel := NewSelect(scan, func(t Tuple) bool { return t[0]%2 == 0 })
	proj := NewProject(sel,
		func(t Tuple) int64 { return t[0] % 2 },
		func(t Tuple) int64 { return t[0] * t[0] })
	agg := NewHashAggregate(proj, []int{0}, []int{1})
	agg.Open()
	tup, ok := agg.Next()
	if !ok {
		t.Fatal("no group")
	}
	if tup[0] != 0 || tup[1] != 0+4+16+36+64 || tup[2] != 5 {
		t.Fatalf("group = %v", tup)
	}
	if _, ok := agg.Next(); ok {
		t.Fatal("expected single group")
	}
	// Reopen restarts.
	agg.Open()
	if _, ok := agg.Next(); !ok {
		t.Fatal("Open did not reset")
	}
}

func TestHashJoinDuplicates(t *testing.T) {
	build := NewTableScan(3,
		func(i int) int64 { return int64(i % 2) },  // keys 0,1,0
		func(i int) int64 { return int64(i + 10) }, // payload 10,11,12
	)
	probe := NewTableScan(2,
		func(i int) int64 { return int64(i) }, // keys 0,1
	)
	j := NewHashJoin(build, probe, 0, 0)
	j.Open()
	count := map[int64]int{}
	for {
		t2, ok := j.Next()
		if !ok {
			break
		}
		count[t2[0]]++
	}
	if count[0] != 2 || count[1] != 1 {
		t.Fatalf("join match counts = %v", count)
	}
}
