package compiled

import (
	"context"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/storage"
)

// Edge-case parity for the compiled backend, reusing the operator
// layer's scenarios (internal/sqlcheck minis): empty base relations
// (workers outnumber morsels, builds prepare zero-row directories),
// all-false filter cascades (every fused loop rejects every row), and
// zero-group aggregations (spill partitions merge empty). Every
// canonical SQL text runs on the compiled backend AND the vectorized
// backend and both are asserted against the naive oracle — the same
// cases, the same oracles, both engines.

func checkEdge(t *testing.T, label string, tp, sb *storage.Database) {
	t.Helper()
	ctx := context.Background()
	for _, db := range []*storage.Database{tp, sb} {
		names := append(logical.SQLQueries(db.Name), extraEdgeQueries(db.Name)...)
		for _, name := range names {
			text, ok := logical.SQLText(db.Name, name)
			if !ok {
				text = name // extra queries are raw SQL
			}
			want, err := sqlcheck.Oracle(db, text)
			if err != nil {
				t.Fatalf("%s %s/%s: oracle: %v", label, db.Name, name, err)
			}
			wantC := sqlcheck.Canon(want)
			for _, workers := range []int{1, 4} {
				res, err := Run(ctx, db, text, workers)
				if err != nil {
					t.Fatalf("%s %s/%s w=%d compiled: %v", label, db.Name, name, workers, err)
				}
				if !sqlcheck.SameRows(sqlcheck.Canon(res.Rows), wantC) {
					t.Errorf("%s %s/%s w=%d: compiled mismatch\n got %v\nwant %v",
						label, db.Name, name, workers, trunc(res.Rows), trunc(want))
				}
				lres, err := logical.Run(ctx, db, text, workers, 1)
				if err != nil {
					t.Fatalf("%s %s/%s w=%d vectorized: %v", label, db.Name, name, workers, err)
				}
				if !sqlcheck.SameRows(sqlcheck.Canon(lres.Rows), wantC) {
					t.Errorf("%s %s/%s w=%d: vectorized mismatch\n got %v\nwant %v",
						label, db.Name, name, workers, trunc(lres.Rows), trunc(want))
				}
			}
		}
	}
}

// extraEdgeQueries adds shapes the canonical texts miss: global
// aggregates over empty/filtered-out inputs, grouped counts, plain
// projections.
func extraEdgeQueries(dataset string) []string {
	if dataset == "tpch" {
		return []string{
			`select count(*), sum(o_totalprice), min(o_orderdate), max(o_totalprice) from orders`,
			`select o_custkey, count(*) from orders group by o_custkey`,
			`select c_custkey, c_nationkey from customer order by 1, 2 limit 5`,
			`select sum(l_extendedprice) from lineitem where 1 = 2`,
		}
	}
	return []string{
		`select count(*), max(lo_revenue) from lineorder`,
		`select d_year, count(*) from lineorder, date where lo_orderdate = d_datekey group by d_year`,
	}
}

func TestCompiledEmptyRelations(t *testing.T) {
	tp, sb := sqlcheck.EmptyMinis()
	checkEdge(t, "empty", tp, sb)
}

func TestCompiledAllFalseSelections(t *testing.T) {
	checkEdge(t, "all-false", sqlcheck.MiniTPCH(10, false), sqlcheck.MiniSSB(10, false))
}

func TestCompiledTinyQualifyingSets(t *testing.T) {
	checkEdge(t, "tiny", sqlcheck.MiniTPCH(7, true), sqlcheck.MiniSSB(7, true))
}
