package compiled

import (
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/logical"
)

// This file is the compiled backend's surface for the hybrid
// per-pipeline executor (internal/hybrid): it exposes the lowered
// pipeline structure — the same decomposition internal/logical's
// vectorized lowering produces — so the hybrid driver can run any
// individual pipeline as a fused loop while its neighbours run
// vectorized. The driver owns all shared execution state (dispatchers,
// hash tables, spill, barrier); this surface only binds that state in
// and runs one pipeline for one worker.

// Program is a query lowered to fused pipelines with the final
// pipeline's sink closures pre-compiled, ready for per-pipeline
// execution under an external driver.
type Program struct {
	pr     *prog
	agg    *logical.Aggregate
	specs  []groupSpec
	keyGet u64Fn
	items  []scalarFn
}

// AggPartitions is the spill-partition count of the two-phase keyed
// aggregation, exported so the hybrid driver sizes the shared spill
// identically to this backend's internal executor.
const AggPartitions = aggPartitions

// LowerProgram lowers an optimized, fully bound logical plan for the
// hybrid executor. All sink expressions compile here, on the caller, so
// unsupported shapes surface as errors before any worker starts.
func LowerProgram(pl *logical.Plan) (*Program, error) {
	pr, err := lower(pl)
	if err != nil {
		return nil, err
	}
	p := &Program{pr: pr, agg: pl.Agg}
	final := pr.final
	switch {
	case pl.Agg != nil && len(pl.Agg.Keys) > 0:
		if p.specs, err = final.compileAggs(pl.Agg); err != nil {
			return nil, err
		}
		if p.keyGet, err = final.groupKeyGet(pl.Agg); err != nil {
			return nil, err
		}
	case pl.Agg != nil:
		if p.specs, err = final.compileAggs(pl.Agg); err != nil {
			return nil, err
		}
	default:
		p.items = make([]scalarFn, len(pl.Proj))
		for j, e := range pl.Proj {
			if p.items[j], err = final.scalar(e); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// NumPipes returns the pipeline count (build pipelines before their
// prober, the final pipeline last — the order execution must follow).
func (p *Program) NumPipes() int { return len(p.pr.pipes) }

// IsBuild reports whether pipeline i terminates in a hash-table build.
func (p *Program) IsBuild(i int) bool { return p.pr.pipes[i].keyCol != nil }

// PayWidth returns the payload-column count of build pipeline i (its
// hash table holds 1+PayWidth words per row).
func (p *Program) PayWidth(i int) int { return len(p.pr.pipes[i].pays) }

// TableName returns the spine table of pipeline i.
func (p *Program) TableName(i int) string { return p.pr.pipes[i].scan.Table.Name }

// TableRows returns the spine cardinality of pipeline i (the morsel
// space its dispatcher must cover).
func (p *Program) TableRows(i int) int { return p.pr.pipes[i].scan.Table.Rows() }

// NumProbes returns the hash-probe count of pipeline i.
func (p *Program) NumProbes(i int) int { return len(p.pr.pipes[i].steps) }

// NumFilters returns the filter-conjunct count of pipeline i (range
// bounds, string equalities, and generic predicates).
func (p *Program) NumFilters(i int) int {
	f := &p.pr.pipes[i].filt
	return len(f.b32) + len(f.b64) + len(f.strs) + len(f.preds)
}

// Bind attaches the driver-owned per-execution state to pipeline i: the
// shared morsel dispatcher, and — for build pipelines — the shared hash
// table its probers will read (pass nil for the final pipeline).
func (p *Program) Bind(i int, ht *hashtable.Table, disp *exec.Dispatcher) {
	p.pr.pipes[i].disp = disp
	p.pr.pipes[i].ht = ht
}

// RunBuild drains build pipeline i into worker wid's shard of its bound
// hash table. Barrier-free: the driver runs the shared two-barrier
// publish (Prepare → InsertShard) afterwards.
func (p *Program) RunBuild(i, wid int) { p.pr.pipes[i].runBuild(wid) }

// RunGrouped runs the final pipeline's phase-one keyed aggregation for
// one worker, spilling partial groups into the shared spill (row layout
// [hash, key, aggs...], identical to the vectorized sink's). A non-nil
// nOut counts the rows reaching the sink (telemetry-instrumented
// executions only).
func (p *Program) RunGrouped(wid int, spill *hashtable.Spill, nOut *int64) {
	p.pr.final.runGrouped(wid, p.specs, p.keyGet, spill, nOut)
}

// RunGlobal runs the final pipeline's ungrouped aggregation for one
// worker, returning its partial for logical.MergeGlobal.
func (p *Program) RunGlobal(wid int) logical.GlobalPartial {
	return p.pr.final.runGlobal(wid, p.specs)
}

// RunProject materializes the final pipeline's projection rows for one
// worker.
func (p *Program) RunProject(wid int) [][]int64 {
	return p.pr.final.runProject(wid, p.items)
}
