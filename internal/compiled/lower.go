// Package compiled is the second lowering backend of the ad-hoc SQL
// subsystem — an extension beyond the paper's fixed query catalog: it
// takes the same optimized logical plan internal/logical produces and
// emits a fused, data-centric executor in the Typer idiom (one
// tuple-at-a-time loop per pipeline, pipeline breakers at hash builds
// and aggregations), instead of lowering onto the vectorized operator
// layer. Expression evaluation is compiled to closures specialized by
// column type and scale; pushed-down comparison filters are normalized
// to per-column range bounds checked inline in the scan loop, so the
// hot filter cascade costs what the hand-written Typer queries pay.
// Pipelines run morsel-parallel under the shared internal/exec
// dispatcher with context cancellation, build into the shared
// internal/hashtable structures, and aggregate with the same two-phase
// spill/merge algorithm as internal/typer — only the execution paradigm
// differs from the Tectorwise lowering, exactly the paper's setup. The
// package registers as the Typer engine's ad-hoc SQL path, so every SQL
// text is executable on both engines and differentially testable.
package compiled

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"paradigms/internal/catalog"
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/logical"
	"paradigms/internal/sql"
)

// The lowering pass mirrors internal/logical's pipeline decomposition:
// each logical Node becomes one pipeline — scan → filter cascade →
// probes of its build chains → terminal (hash-table build, grouped
// spill, global accumulate, or row collection). Where the vectorized
// lowering assembles operator trees over batches, this pass compiles
// every pipeline into a single fused loop driven row by row.

// valRef locates a column's value within one pipeline: a base column of
// the pipeline's spine table, or a frame slot filled by a probe gather.
type valRef struct {
	base *catalog.Column // nil for gathered columns
	slot int
}

// gather copies one hash-table payload word into a frame slot at probe
// time (word 0 is the join key itself).
type gather struct {
	word int
	slot int
	col  *catalog.Column
}

// step is one hash probe of the pipeline's fused loop.
type step struct {
	join     *logical.Join
	build    *pipe
	probeKey *catalog.Column // base column of this pipeline's spine

	gathers   []gather
	residuals []residual

	// Compiled probe-key accessors (exactly one non-nil).
	key32 []int32
	key64 []int64
}

// residual is a cross-chain equality enforced after a probe.
type residual struct {
	cols [2]*catalog.Column
	a, b u64Fn
}

// pipe is one compiled pipeline.
type pipe struct {
	ord   int // 1-based position in execution order (explain labels)
	scan  *logical.Scan
	steps []*step
	slots int
	srcOf map[*catalog.Column]valRef

	rejectAll bool

	// Build-side output: hash-table key column (a base column of the
	// spine) plus payload columns in word order (word 1+i). Nil keyCol
	// marks the final pipeline.
	keyCol *catalog.Column
	pays   []*catalog.Column
	paySrc []valRef

	// Compiled forms.
	filt   filt
	keyGet u64Fn   // build key (build pipelines)
	payGet []u64Fn // payload words (build pipelines)

	// Per-execution shared state.
	ht   *hashtable.Table
	disp *exec.Dispatcher
}

// prog is a fully lowered query: pipelines in execution order (build
// pipelines before their prober, the final pipeline last).
type prog struct {
	pl    *logical.Plan
	pipes []*pipe
	final *pipe
}

// lower compiles the optimized logical plan into fused pipelines.
func lower(pl *logical.Plan) (*prog, error) {
	pr := &prog{pl: pl}
	needed := map[*catalog.Column]bool{}
	mark := func(c *catalog.Column) { needed[c] = true }
	if pl.Agg != nil {
		for _, k := range pl.Agg.Keys {
			needed[k] = true
		}
		for _, s := range pl.Agg.Aggs {
			if s.Arg != nil {
				sql.WalkCols(s.Arg, mark)
			}
		}
	}
	for _, e := range pl.Proj {
		sql.WalkCols(e, mark)
	}
	final, err := pr.compilePipe(pl.Root, sortedCols(needed))
	if err != nil {
		return nil, err
	}
	final.rejectAll = pl.AlwaysFalse
	pr.final = final
	for i, p := range pr.pipes {
		p.ord = i + 1
		if err := p.prep(); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// compilePipe compiles the pipeline rooted at n, which must expose the
// needed columns to its consumer. Build pipelines append themselves
// before their prober (execution order), exactly like the vectorized
// lowering, so the two backends decompose every plan identically.
func (pr *prog) compilePipe(n logical.Node, needed []*catalog.Column) (*pipe, error) {
	spine := n.Spine()
	var joins []*logical.Join
	for cur := n; ; {
		j, ok := cur.(*logical.Join)
		if !ok {
			break
		}
		joins = append([]*logical.Join{j}, joins...) // innermost probe first
		cur = j.Probe
	}

	p := &pipe{scan: spine, srcOf: map[*catalog.Column]valRef{}}

	req := map[*catalog.Column]bool{}
	for _, c := range needed {
		req[c] = true
	}
	for _, j := range joins {
		for _, r := range j.Residuals {
			req[r[0]] = true
			req[r[1]] = true
		}
	}
	reqList := sortedCols(req)

	for _, j := range joins {
		chainTabs := tablesUnder(j.Build)
		var pays []*catalog.Column
		for _, c := range reqList {
			if chainTabs[c.Table] && c != j.BuildKey {
				pays = append(pays, c)
			}
		}
		bp, err := pr.compilePipe(j.Build, pays)
		if err != nil {
			return nil, err
		}
		bp.keyCol = j.BuildKey
		bp.pays = pays
		bp.paySrc = make([]valRef, len(pays))
		for pi, c := range pays {
			bp.paySrc[pi] = bp.resolve(c)
		}
		st := &step{join: j, build: bp, probeKey: j.ProbeKey}
		for _, c := range reqList {
			if !chainTabs[c.Table] {
				continue
			}
			word := 0
			if c != j.BuildKey {
				word = 1 + indexOfCol(pays, c)
			}
			st.gathers = append(st.gathers, gather{word: word, slot: p.slots, col: c})
			p.srcOf[c] = valRef{slot: p.slots}
			p.slots++
		}
		for _, r := range j.Residuals {
			st.residuals = append(st.residuals, residual{cols: r})
		}
		p.steps = append(p.steps, st)
	}
	pr.pipes = append(pr.pipes, p)
	return p, nil
}

// prep compiles the pipeline's row-level closures: the filter cascade,
// probe-key accessors, residual comparators, and build-side outputs.
func (p *pipe) prep() error {
	if err := p.compileFilters(); err != nil {
		return err
	}
	for _, st := range p.steps {
		k32, k64, err := baseViews(st.probeKey)
		if err != nil {
			return err
		}
		st.key32, st.key64 = k32, k64
		for i := range st.residuals {
			r := &st.residuals[i]
			var err error
			if r.a, err = p.u64Get(p.resolve(r.cols[0])); err != nil {
				return err
			}
			if r.b, err = p.u64Get(p.resolve(r.cols[1])); err != nil {
				return err
			}
		}
	}
	if p.keyCol != nil {
		var err error
		if p.keyGet, err = p.u64Get(valRef{base: p.keyCol}); err != nil {
			return err
		}
		p.payGet = make([]u64Fn, len(p.paySrc))
		for i, src := range p.paySrc {
			if p.payGet[i], err = p.u64Get(src); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolve locates a column within the pipeline.
func (p *pipe) resolve(c *catalog.Column) valRef {
	if c.Table == p.scan.Table {
		return valRef{base: c}
	}
	src, ok := p.srcOf[c]
	if !ok {
		panic("compiled: column " + c.Table.Name + "." + c.Name + " not materialized in pipeline over " + p.scan.Table.Name)
	}
	return src
}

func indexOfCol(cols []*catalog.Column, c *catalog.Column) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	panic("compiled: column missing from payload list")
}

// sortedCols renders a column set deterministic (same order as the
// vectorized lowering, so payload layouts and explains line up).
func sortedCols(set map[*catalog.Column]bool) []*catalog.Column {
	out := make([]*catalog.Column, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table.Name != out[j].Table.Name {
			return out[i].Table.Name < out[j].Table.Name
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func tablesUnder(n logical.Node) map[*catalog.Table]bool {
	out := map[*catalog.Table]bool{}
	var walk func(logical.Node)
	walk = func(n logical.Node) {
		switch x := n.(type) {
		case *logical.Scan:
			out[x.Table] = true
		case *logical.Join:
			walk(x.Build)
			walk(x.Probe)
		}
	}
	walk(n)
	return out
}

// workers normalizes a worker-count argument (shards cap at
// hashtable.MaxShards, same bound the hand-written engines live with).
func workers(n int) int {
	w := n
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > hashtable.MaxShards {
		w = hashtable.MaxShards
	}
	return w
}

// ---------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------

// Explain renders the compiled pipeline decomposition of a plan — the
// EXPLAIN surface of cmd/sqlsh under \engine typer and the assertion
// surface of the plan-shape golden tests: breaker placement, build and
// probe sides, gathers, residuals, and the terminal of every pipeline.
func Explain(pl *logical.Plan) (string, error) {
	pr, err := lower(pl)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipelines: %d\n", len(pr.pipes))
	for _, p := range pr.pipes {
		fmt.Fprintf(&sb, "P%d: scan %s", p.ord, p.scan.Table.Name)
		if p.rejectAll {
			sb.WriteString(" σ(false)")
		}
		for _, f := range p.scan.Filters {
			fmt.Fprintf(&sb, " σ(%s)", sql.String(f))
		}
		for _, st := range p.steps {
			fmt.Fprintf(&sb, " → probe[P%d %s = %s]", st.build.ord, st.probeKey.Name, st.build.keyCol.Name)
			if len(st.gathers) > 0 {
				names := make([]string, len(st.gathers))
				for i, g := range st.gathers {
					names[i] = g.col.Name
				}
				fmt.Fprintf(&sb, " gather[%s]", strings.Join(names, " "))
			}
			for _, r := range st.residuals {
				fmt.Fprintf(&sb, " residual(%s = %s)", r.cols[0].Name, r.cols[1].Name)
			}
		}
		switch {
		case p.keyCol != nil:
			names := make([]string, len(p.pays))
			for i, c := range p.pays {
				names[i] = c.Name
			}
			fmt.Fprintf(&sb, " → build[%s] pays[%s]", p.keyCol.Name, strings.Join(names, " "))
		case pl.Agg != nil && len(pl.Agg.Keys) > 0:
			names := make([]string, len(pl.Agg.Keys))
			for i, c := range pl.Agg.Keys {
				names[i] = c.Name
			}
			fmt.Fprintf(&sb, " → groupby keys=[%s] aggs=[%s]", strings.Join(names, " "), aggList(pl.Agg))
		case pl.Agg != nil:
			fmt.Fprintf(&sb, " → aggregate [%s]", aggList(pl.Agg))
		default:
			items := make([]string, len(pl.Proj))
			for i, e := range pl.Proj {
				items[i] = sql.String(e)
			}
			fmt.Fprintf(&sb, " → project [%s]", strings.Join(items, ", "))
		}
		sb.WriteByte('\n')
	}
	if pl.Having != nil {
		fmt.Fprintf(&sb, "having %s\n", sql.String(pl.Having))
	}
	if len(pl.Sort) > 0 {
		fmt.Fprintf(&sb, "sort keys: %d\n", len(pl.Sort))
	}
	if pl.Limit >= 0 {
		fmt.Fprintf(&sb, "limit %d\n", pl.Limit)
	}
	return sb.String(), nil
}

func aggList(agg *logical.Aggregate) string {
	parts := make([]string, len(agg.Aggs))
	for i, a := range agg.Aggs {
		if a.Arg == nil {
			parts[i] = fmt.Sprintf("%s(*)", a.Op)
		} else {
			parts[i] = fmt.Sprintf("%s(%s)", a.Op, sql.String(a.Arg))
		}
	}
	return strings.Join(parts, ", ")
}
