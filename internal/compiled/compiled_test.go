package compiled

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/ssb"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"
)

var (
	dbOnce  sync.Once
	tpchDBs map[float64]*storage.Database
	ssbDBs  map[float64]*storage.Database
)

func testDBs() (map[float64]*storage.Database, map[float64]*storage.Database) {
	dbOnce.Do(func() {
		tpchDBs = map[float64]*storage.Database{}
		ssbDBs = map[float64]*storage.Database{}
		for _, sf := range []float64{0.01, 0.05} {
			tpchDBs[sf] = tpch.Generate(sf, 0)
			ssbDBs[sf] = ssb.Generate(sf, 0)
		}
	})
	return tpchDBs, ssbDBs
}

// TestCompiledMatchesReference is the compiled backend's headline
// proof: the SQL texts of TPC-H Q6/Q3/Q5/Q18 and SSB Q1.1/Q2.1 lower
// to fused pipelines and execute bit-identical to the reference
// oracles across worker counts (the compiled engine has no vector
// size; the vectorized grid is covered by the cross-engine
// differential suite at the repo root).
func TestCompiledMatchesReference(t *testing.T) {
	tp, sb := testDBs()
	for _, sf := range []float64{0.01, 0.05} {
		for _, db := range []*storage.Database{tp[sf], sb[sf]} {
			for _, name := range logical.SQLQueries(db.Name) {
				text, ok := logical.SQLText(db.Name, name)
				if !ok {
					t.Fatalf("no SQL text for %s/%s", db.Name, name)
				}
				want := sqlcheck.RefRows(db, name)
				for _, workers := range []int{1, 4} {
					res, err := Run(context.Background(), db, text, workers)
					if err != nil {
						t.Fatalf("sf=%v %s/%s w=%d: %v", sf, db.Name, name, workers, err)
					}
					got := res.Rows
					if len(got) == 0 && len(want) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("sf=%v %s/%s w=%d: rows mismatch\n got %v\nwant %v",
							sf, db.Name, name, workers, trunc(got), trunc(want))
					}
				}
			}
		}
	}
}

func trunc(rows [][]int64) [][]int64 {
	if len(rows) > 8 {
		return rows[:8]
	}
	return rows
}

// TestCompiledFeatures exercises grammar breadth on the compiled
// backend beyond the benchmark queries: global COUNT/MIN/MAX, grouped
// COUNT with HAVING on a hidden aggregate, IN/OR/NOT predicates,
// projections with ORDER BY/LIMIT, and constant-false WHERE.
func TestCompiledFeatures(t *testing.T) {
	tp, _ := testDBs()
	db := tp[0.01]
	ctx := context.Background()

	run := func(text string) *logical.Result {
		t.Helper()
		res, err := Run(ctx, db, text, 2)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		return res
	}

	res := run(`select count(*), min(o_orderdate), max(o_orderdate), sum(o_totalprice) from orders`)
	ord := db.Rel("orders")
	dates := ord.Date("o_orderdate")
	totals := ord.Numeric("o_totalprice")
	minD, maxD, sum := int64(dates[0]), int64(dates[0]), int64(0)
	for i := range dates {
		d := int64(dates[i])
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
		sum += int64(totals[i])
	}
	want := []int64{int64(ord.Rows()), minD, maxD, sum}
	if !reflect.DeepEqual(res.Rows, [][]int64{want}) {
		t.Errorf("global aggregates = %v, want %v", res.Rows, want)
	}

	res = run(`select o_shippriority, count(*) from orders group by o_shippriority having max(o_orderkey) > 0`)
	var total int64
	for _, r := range res.Rows {
		total += r[1]
	}
	if total != int64(ord.Rows()) {
		t.Errorf("grouped counts sum to %d, want %d", total, ord.Rows())
	}

	res = run(`select n_nationkey, n_regionkey from nation where n_regionkey in (1, 2) or n_nationkey = 0 order by 1 limit 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("projection returned %d rows, want 5", len(res.Rows))
	}
	prev := int64(-1)
	for _, r := range res.Rows {
		if r[0] <= prev {
			t.Errorf("rows not ordered by first column: %v", res.Rows)
		}
		prev = r[0]
		if !(r[1] == 1 || r[1] == 2 || r[0] == 0) {
			t.Errorf("row %v fails the OR/IN predicate", r)
		}
	}

	// String predicates under NOT go through the generic compiled
	// predicate and must not silently drop rows.
	cust := db.Rel("customer")
	segHeap := cust.String("c_mktsegment")
	building := 0
	for i := 0; i < cust.Rows(); i++ {
		if string(segHeap.Get(i)) == "BUILDING" {
			building++
		}
	}
	res = run(`select count(*) from customer where not (c_mktsegment = 'BUILDING')`)
	if got := res.Rows[0][0]; got != int64(cust.Rows()-building) {
		t.Errorf("NOT over string eq counted %d, want %d", got, cust.Rows()-building)
	}

	res = run(`select sum(o_totalprice) from orders where 1 = 2`)
	if !reflect.DeepEqual(res.Rows, [][]int64{{0}}) {
		t.Errorf("always-false global sum = %v, want [[0]]", res.Rows)
	}
	res = run(`select o_custkey from orders where 1 = 2 group by o_custkey`)
	if len(res.Rows) != 0 {
		t.Errorf("always-false grouped query returned %d rows", len(res.Rows))
	}
}

// TestCompiledCancellation: a canceled context drains the fused
// pipelines' workers promptly, like every registered query.
func TestCompiledCancellation(t *testing.T) {
	tp, _ := testDBs()
	db := tp[0.01]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	text, _ := logical.SQLText("tpch", "Q3")
	if _, err := Run(ctx, db, text, 4); err != nil {
		t.Fatalf("canceled run errored: %v", err)
	}
}
