package compiled

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paradigms/internal/logical"
)

var update = flag.Bool("update", false, "rewrite the plan-shape golden files")

// TestCompiledPlanShapes pins the compiled lowering's pipeline
// decomposition for the canonical queries: breaker placement, build and
// probe sides, gathers, and residual equalities. Planner or lowering
// changes that silently reshape the compiled path fail here; regenerate
// deliberately with `go test ./internal/compiled -run PlanShapes
// -update`.
func TestCompiledPlanShapes(t *testing.T) {
	tp, sb := testDBs()
	for _, tc := range []struct {
		db   string
		name string
	}{
		{"tpch", "Q6"}, {"tpch", "Q3"}, {"tpch", "Q5"}, {"tpch", "Q18"},
		{"ssb", "Q1.1"}, {"ssb", "Q2.1"},
	} {
		db := tp[0.01]
		if tc.db == "ssb" {
			db = sb[0.01]
		}
		text, ok := logical.SQLText(tc.db, tc.name)
		if !ok {
			t.Fatalf("no SQL text for %s/%s", tc.db, tc.name)
		}
		pl, err := logical.Prepare(db, text)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.db, tc.name, err)
		}
		got, err := Explain(pl)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.db, tc.name, err)
		}
		file := filepath.Join("testdata", tc.db+"_"+strings.ReplaceAll(tc.name, ".", "_")+".golden")
		if *update {
			if err := os.WriteFile(file, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s/%s: %v (run with -update to create)", tc.db, tc.name, err)
		}
		if got != string(want) {
			t.Errorf("%s/%s: compiled pipeline shape changed\n got:\n%s\nwant:\n%s", tc.db, tc.name, got, want)
		}
	}
}
