package compiled

import (
	"context"

	"paradigms/internal/registry"
	"paradigms/internal/storage"
)

// The compiled lowering registers as the Typer engine's ad-hoc SQL
// path, the counterpart of internal/logical's Tectorwise registration:
// paradigms.RunContext and the query service dispatch raw SQL texts to
// either engine through these two entries, so every ad-hoc statement is
// a live two-engine experiment. Fused pipelines have no vector size;
// the option is ignored, exactly like the registered Typer queries.
func init() {
	registry.RegisterAdHoc(registry.Typer, func(ctx context.Context, db *storage.Database, text string, opt registry.Options) (any, error) {
		return Run(ctx, db, text, opt.Workers)
	})
}
