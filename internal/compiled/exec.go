package compiled

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"time"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/logical"
	"paradigms/internal/obs"
	"paradigms/internal/simd"
	"paradigms/internal/storage"
)

const (
	// aggPartitions is the spill-partition count of the two-phase
	// aggregation (matches internal/typer).
	aggPartitions = 64
	// preAggCapacity bounds each worker's pre-aggregation hash table so
	// it stays cache resident; overflowing groups spill as single-tuple
	// partials (matches internal/typer).
	preAggCapacity = 1 << 14
)

// The compiled backend hashes keys with hashtable.Mix64, the same
// low-latency finalizer the hand-written Typer pipelines use (see
// typer.Hash) — called directly so the compiler can inline it into the
// fused loops.

// Run executes an ad-hoc SQL text end to end on the compiled backend:
// parse → bind → optimize (all shared with the vectorized path) → lower
// to fused pipelines → execute morsel-parallel. Lowering or executor
// panics surface as errors, like logical.Run.
func Run(ctx context.Context, db *storage.Database, text string, nWorkers int) (res *logical.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compiled: internal error executing query: %v", r)
		}
	}()
	pl, err := logical.Prepare(db, text)
	if err != nil {
		return nil, err
	}
	return Execute(ctx, pl, nWorkers)
}

// ExecuteArgs is Execute for parameterized plans: the argument binding
// substitutes into a copy-on-write clone of the cached plan
// (logical.(*Plan).BindArgs — shared with the vectorized backend, so
// the two engines bind identically) and the bound plan lowers to fused
// pipelines and runs. The template plan is never mutated; concurrent
// executions of one cached statement are safe.
func ExecuteArgs(ctx context.Context, pl *logical.Plan, nWorkers int, args []int64) (*logical.Result, error) {
	bound, err := pl.BindArgs(args)
	if err != nil {
		return nil, err
	}
	return Execute(ctx, bound, nWorkers)
}

// ExecuteStream runs the plan on the compiled backend, flushing result
// batches to sink as they are produced — projection rows per fused
// scan loop, grouped rows per merged spill partition — with the same
// contract as logical.(*Plan).ExecuteStream: SetCols before execution,
// chunk-sized batches (0 = default), materializing shapes (ORDER BY /
// HAVING / LIMIT / global aggregates) stream their finalized rows, a
// sink error aborts the query.
func ExecuteStream(ctx context.Context, pl *logical.Plan, nWorkers, chunk int, sink logical.RowSink) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compiled: internal error executing query: %v", r)
		}
	}()
	if len(pl.Params) > 0 {
		return fmt.Errorf("compiled: statement has %d unbound parameter(s); use ExecuteArgsStream", len(pl.Params))
	}
	if chunk <= 0 {
		chunk = logical.DefaultStreamChunk
	}
	if err := sink.SetCols(pl.Cols); err != nil {
		return err
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := logical.NewStreamer(sink, cancel)

	if pl.Streamable() {
		if _, err := executeInto(sctx, pl, nWorkers, st, chunk, nil); err != nil {
			return err
		}
		if err := st.Err(); err != nil {
			return err
		}
		return ctx.Err()
	}
	res, err := Execute(ctx, pl, nWorkers)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return logical.StreamChunks(ctx, st, res.Rows, chunk)
}

// ExecuteArgsStream is ExecuteStream for parameterized plans (the
// argument binding substitutes into a copy-on-write clone, like
// ExecuteArgs).
func ExecuteArgsStream(ctx context.Context, pl *logical.Plan, nWorkers, chunk int, args []int64, sink logical.RowSink) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compiled: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return err
	}
	return ExecuteStream(ctx, bound, nWorkers, chunk, sink)
}

// Execute lowers an optimized logical plan to fused pipelines and runs
// them morsel-parallel. A canceled context drains the workers within
// one morsel and returns a partial result the caller discards — the
// same contract as every registered engine query. Parameterized plans
// must go through ExecuteArgs.
func Execute(ctx context.Context, pl *logical.Plan, nWorkers int) (res *logical.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compiled: internal error executing query: %v", r)
		}
	}()
	if len(pl.Params) > 0 {
		return nil, fmt.Errorf("compiled: statement has %d unbound parameter(s); use ExecuteArgs", len(pl.Params))
	}
	return executeInto(ctx, pl, nWorkers, nil, 0, nil)
}

// ExecutePartial runs the plan's fused pipelines but stops before
// finalization, returning the shard-local partial state for
// logical.(*Plan).MergePartials — the compiled backend's scatter side
// of the exchange, with the same contract as the vectorized
// ExecutePartial.
func ExecutePartial(ctx context.Context, pl *logical.Plan, nWorkers int) (part *logical.Partial, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compiled: internal error executing query: %v", r)
		}
	}()
	if len(pl.Params) > 0 {
		return nil, fmt.Errorf("compiled: statement has %d unbound parameter(s); use ExecutePartialArgs", len(pl.Params))
	}
	part = &logical.Partial{}
	if _, err := executeInto(ctx, pl, nWorkers, nil, 0, part); err != nil {
		return nil, err
	}
	return part, nil
}

// ExecutePartialArgs is ExecutePartial for parameterized plans (the
// binding substitutes into a copy-on-write clone, like ExecuteArgs).
func ExecutePartialArgs(ctx context.Context, pl *logical.Plan, nWorkers int, args []int64) (part *logical.Partial, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compiled: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return nil, err
	}
	return ExecutePartial(ctx, bound, nWorkers)
}

// executeInto is the shared body of Execute, ExecuteStream, and
// ExecutePartial: with a nil stream it materializes a Result; with a
// stream it flushes row batches as they are produced and returns a nil
// Result (streaming callers pass a Streamable plan). With a non-nil
// part it fills the shard-local partial state instead of finalizing.
func executeInto(ctx context.Context, pl *logical.Plan, nWorkers int, stream *logical.Streamer, chunk int, part *logical.Partial) (res *logical.Result, err error) {
	pr, err := lower(pl)
	if err != nil {
		return nil, err
	}
	w := workers(nWorkers)
	col := obs.FromContext(ctx)
	if col != nil {
		// The vectorized lowering produces the identical pipeline
		// decomposition (the hybrid executor's parity invariant), so its
		// describer serves both backends.
		if err := pl.DescribePipes(col); err != nil {
			return nil, err
		}
		for i := range pr.pipes {
			col.SetPipeEngine(i, "t")
		}
	}
	for _, p := range pr.pipes {
		p.disp = exec.NewDispatcherCtx(ctx, p.scan.Table.Rows(), 0)
		if p.keyCol != nil {
			p.ht = hashtable.New(1+len(p.pays), w)
		}
	}

	agg := pl.Agg
	keyed := agg != nil && len(agg.Keys) > 0
	global := agg != nil && len(agg.Keys) == 0

	var (
		spill      *hashtable.Spill
		partDisp   *exec.Dispatcher
		htOps      []hashtable.AggOp
		workerRows [][][]int64
		partials   []logical.GlobalPartial
	)
	switch {
	case keyed:
		htOps = make([]hashtable.AggOp, len(agg.Aggs))
		for i, s := range agg.Aggs {
			htOps[i] = s.Op.HTOp()
		}
		spill = hashtable.NewSpill(w, aggPartitions, 2+len(htOps))
		partDisp = exec.NewDispatcherCtx(ctx, aggPartitions, 1)
		workerRows = make([][][]int64, w)
	case global:
		partials = make([]logical.GlobalPartial, w)
	default:
		workerRows = make([][][]int64, w)
	}

	// Sink expressions compile once, on this goroutine, so unsupported
	// shapes surface as errors here instead of panics on workers. The
	// compiled closures are stateless per row and shared by all workers.
	final := pr.final
	var (
		specs  []groupSpec
		keyGet u64Fn
		items  []scalarFn
	)
	switch {
	case keyed:
		if specs, err = final.compileAggs(agg); err != nil {
			return nil, err
		}
		if keyGet, err = final.groupKeyGet(agg); err != nil {
			return nil, err
		}
	case global:
		if specs, err = final.compileAggs(agg); err != nil {
			return nil, err
		}
	default:
		items = make([]scalarFn, len(pl.Proj))
		for j, e := range pl.Proj {
			if items[j], err = final.scalar(e); err != nil {
				return nil, err
			}
		}
	}

	var streamBufs []*logical.StreamBuf
	if stream != nil {
		streamBufs = make([]*logical.StreamBuf, w)
		for i := range streamBufs {
			streamBufs[i] = stream.NewBuf(chunk)
		}
	}

	bar := exec.NewBarrier(w)
	fi := len(pr.pipes) - 1
	exec.Parallel(w, func(wid int) {
		// Build pipelines in dependency order, each ending at its
		// pipeline breaker (materialize → barrier → size directory →
		// parallel insert).
		for pi, p := range pr.pipes {
			if p.keyCol == nil {
				continue
			}
			var t0 time.Time
			if col != nil {
				t0 = time.Now()
			}
			p.runBuild(wid)
			if col != nil {
				col.PipeWorker(pi, 0, 0, time.Since(t0).Nanoseconds())
			}
			bar.Wait(func() { p.ht.Prepare(p.ht.Rows()) })
			p.ht.InsertShard(wid)
			bar.Wait(nil)
		}

		var t0 time.Time
		var nOut *int64
		if col != nil {
			t0 = time.Now()
			nOut = new(int64)
		}
		switch {
		case keyed:
			final.runGrouped(wid, specs, keyGet, spill, nOut)
			if col != nil {
				col.PipeWorker(fi, *nOut, 0, time.Since(t0).Nanoseconds())
			}
			bar.Wait(nil)
			// Phase two: per-partition merge of partial aggregates.
			// Output rows subslice a per-partition arena (one
			// allocation per partition instead of one per group).
			width := agg.MergedWidth()
			for {
				pm, ok := partDisp.Next()
				if !ok {
					break
				}
				arena := make([]int64, spill.PartitionCount(pm.Begin)*width)
				hashtable.MergeSpill(spill, pm.Begin, htOps, func(row []uint64) {
					out := arena[:width:width]
					arena = arena[width:]
					agg.DecodeMergedRow(row, out)
					if stream != nil {
						streamBufs[wid].Add(pl.ItemRow(out))
						return
					}
					workerRows[wid] = append(workerRows[wid], out)
				})
			}
		case global:
			partials[wid] = final.runGlobal(wid, specs)
			if col != nil {
				col.PipeWorker(fi, partials[wid].N, 0, time.Since(t0).Nanoseconds())
			}
		default:
			if stream != nil {
				final.runProjectStream(items, streamBufs[wid], nOut)
			} else {
				workerRows[wid] = final.runProject(wid, items)
				if nOut != nil {
					*nOut = int64(len(workerRows[wid]))
				}
			}
			if col != nil {
				col.PipeWorker(fi, *nOut, 0, time.Since(t0).Nanoseconds())
			}
		}
	})

	if col != nil {
		// Build-pipeline output = the shared table's final row count;
		// merged once here rather than per worker.
		for i, p := range pr.pipes {
			if p.keyCol != nil {
				n := int64(p.ht.Rows())
				col.SetHTRows(i, n)
				col.PipeWorker(i, n, 0, 0)
			}
		}
	}

	if stream != nil {
		for _, b := range streamBufs {
			b.Flush()
		}
		return nil, nil
	}

	if part != nil {
		// Partial mode: hand the pre-finalization state to the exchange
		// merge instead of running the HAVING/sort/limit tail here.
		switch {
		case keyed:
			for _, wr := range workerRows {
				part.Groups = append(part.Groups, wr...)
			}
		case global:
			part.Globals = partials
		default:
			for _, wr := range workerRows {
				part.Rows = append(part.Rows, wr...)
			}
		}
		return nil, nil
	}

	var rows [][]int64
	switch {
	case global:
		rows = [][]int64{logical.MergeGlobal(agg, partials)}
	default:
		for _, wr := range workerRows {
			rows = append(rows, wr...)
		}
	}
	return pl.FinalizeRows(rows)
}

// run drives the pipeline's fused tuple-at-a-time loop. The loop body
// is what a data-centric code generator would emit per pipeline; per
// DESIGN.md S1 the "generated code" for the dominant shapes is
// committed here as specialized loop variants — a pure filter scan and
// a filter scan + single probe, each with its bounds and probe state
// hoisted into function-local variables — because one polymorphic loop
// carries enough live state that Go spills it to the stack on every
// row. Wider shapes (multi-probe pipelines like Q5's) take the generic
// loop.
func (p *pipe) run(sink func(i int, fr []int64)) {
	if p.rejectAll {
		return
	}
	frame := make([]int64, p.slots)
	// checked filters beyond the unrolled range bounds and inline
	// string equalities.
	tail := len(p.filt.preds) > 0 || len(p.filt.b32) > 2 || len(p.filt.b64) > 2
	switch {
	case len(p.steps) == 0 && !tail:
		p.runScan(frame, sink)
	case len(p.steps) == 1 && !tail && len(p.steps[0].residuals) == 0 && len(p.filt.strs) == 0:
		if len(p.filt.b32) <= 1 && len(p.filt.b64) == 0 && p.steps[0].key32 != nil {
			p.runScanProbe32(frame, sink)
		} else {
			p.runScanProbe(frame, sink)
		}
	default:
		p.runGeneric(frame, sink)
	}
}

// probeBlock is the staging granularity of runScanProbe32's filter: the
// bound check runs branch-free over a cache-resident block (the SWAR
// kernel of internal/simd), and only qualifying positions reach the
// probe loop — a micro-vectorized stage inside an otherwise fused
// pipeline, per the paper's observation that data-parallel filter work
// is where SIMD pays even in a compiled engine (§5).
const probeBlock = 1024

// runScanProbe32: at most one 32-bit range bound and one 32-bit-keyed
// residual-free probe — the exact shape of every pipeline of Q3 and
// Q18, kept register-resident.
func (p *pipe) runScanProbe32(frame []int64, sink func(i int, fr []int64)) {
	st := p.steps[0]
	k32 := st.key32
	ht := st.build.ht
	gath := st.gathers
	if len(p.filt.b32) == 0 {
		// No bound: plain probe loop, no staging.
		for {
			m, ok := p.disp.Next()
			if !ok {
				return
			}
		rows:
			for i := m.Begin; i < m.End; i++ {
				k := uint64(uint32(k32[i]))
				ref := ht.Lookup(hashtable.Mix64(k))
				for {
					if ref == 0 {
						continue rows
					}
					if row := ht.Row(ref); row[0] == k {
						for _, g := range gath {
							frame[g.slot] = int64(row[g.word])
						}
						break
					}
					ref = ht.Next(ref)
				}
				sink(i, frame)
			}
		}
	}
	c32, lo, hi := p.filt.b32[0].col, p.filt.b32[0].lo, p.filt.b32[0].hi
	if lo > hi || lo > math.MaxInt32 || hi < math.MinInt32 {
		return // empty range, or bound excludes every 32-bit value
	}
	lo32, hi32 := int32(max64(lo, math.MinInt32)), int32(min64(hi, math.MaxInt32))
	sel := make([]int32, probeBlock)
	for {
		m, ok := p.disp.Next()
		if !ok {
			return
		}
		for base := m.Begin; base < m.End; base += probeBlock {
			end := base + probeBlock
			if end > m.End {
				end = m.End
			}
			nk := simd.SelectRange(c32[base:end], lo32, hi32, sel)
		matches:
			for j := 0; j < nk; j++ {
				i := base + int(sel[j])
				k := uint64(uint32(k32[i]))
				ref := ht.Lookup(hashtable.Mix64(k))
				for {
					if ref == 0 {
						continue matches
					}
					if row := ht.Row(ref); row[0] == k {
						for _, g := range gath {
							frame[g.slot] = int64(row[g.word])
						}
						break
					}
					ref = ht.Next(ref)
				}
				sink(i, frame)
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// bounds returns the unrolled range-bound locals of the filter cascade
// (nil col = absent slot). Callers checked that at most two bounds per
// width exist.
func (f *filt) bounds() (c32a, c32b []int32, lo32a, hi32a, lo32b, hi32b int64, c64a, c64b []int64, lo64a, hi64a, lo64b, hi64b int64) {
	if len(f.b32) > 0 {
		c32a, lo32a, hi32a = f.b32[0].col, f.b32[0].lo, f.b32[0].hi
	}
	if len(f.b32) > 1 {
		c32b, lo32b, hi32b = f.b32[1].col, f.b32[1].lo, f.b32[1].hi
	}
	if len(f.b64) > 0 {
		c64a, lo64a, hi64a = f.b64[0].col, f.b64[0].lo, f.b64[0].hi
	}
	if len(f.b64) > 1 {
		c64b, lo64b, hi64b = f.b64[1].col, f.b64[1].lo, f.b64[1].hi
	}
	return
}

// runScan: filter-only pipeline — range bounds and inline string
// equalities, no probes. The exact (one 32-bit, two 64-bit) shape of
// Q6's cascade gets its own branch-free-slot loop.
func (p *pipe) runScan(frame []int64, sink func(i int, fr []int64)) {
	f := &p.filt
	if len(f.b32) == 1 && len(f.b64) == 2 && len(f.strs) == 0 {
		p.runScan122(frame, sink)
		return
	}
	c32a, c32b, lo32a, hi32a, lo32b, hi32b, c64a, c64b, lo64a, hi64a, lo64b, hi64b := f.bounds()
	strs := f.strs
	for {
		m, ok := p.disp.Next()
		if !ok {
			return
		}
	rows:
		for i := m.Begin; i < m.End; i++ {
			if c32a != nil {
				if v := int64(c32a[i]); v < lo32a || v > hi32a {
					continue rows
				}
			}
			if c32b != nil {
				if v := int64(c32b[i]); v < lo32b || v > hi32b {
					continue rows
				}
			}
			if c64a != nil {
				if v := c64a[i]; v < lo64a || v > hi64a {
					continue rows
				}
			}
			if c64b != nil {
				if v := c64b[i]; v < lo64b || v > hi64b {
					continue rows
				}
			}
			for _, s := range strs {
				if bytes.Equal(s.heap.Get(i), s.val) != s.eq {
					continue rows
				}
			}
			sink(i, frame)
		}
	}
}

// runScan122: one 32-bit and two 64-bit bounds (Q6's and Q1.1's
// cascade), all slots present — no per-slot nil checks.
func (p *pipe) runScan122(frame []int64, sink func(i int, fr []int64)) {
	f := &p.filt
	c32, lo32, hi32 := f.b32[0].col, f.b32[0].lo, f.b32[0].hi
	c64a, lo64a, hi64a := f.b64[0].col, f.b64[0].lo, f.b64[0].hi
	c64b, lo64b, hi64b := f.b64[1].col, f.b64[1].lo, f.b64[1].hi
	for {
		m, ok := p.disp.Next()
		if !ok {
			return
		}
		for i := m.Begin; i < m.End; i++ {
			if v := int64(c32[i]); v < lo32 || v > hi32 {
				continue
			}
			if v := c64a[i]; v < lo64a || v > hi64a {
				continue
			}
			if v := c64b[i]; v < lo64b || v > hi64b {
				continue
			}
			sink(i, frame)
		}
	}
}

// runScanProbe: filter scan plus one residual-free probe (the shape of
// every pipeline of Q3/Q18/Q1.1 and most of Q5's). Probe walks compare
// the stored key directly — chains are per-bucket, so a key match is
// definitive and one word cheaper than the hash prefilter on these
// 1-word keys.
func (p *pipe) runScanProbe(frame []int64, sink func(i int, fr []int64)) {
	c32a, c32b, lo32a, hi32a, lo32b, hi32b, c64a, c64b, lo64a, hi64a, lo64b, hi64b := p.filt.bounds()
	st := p.steps[0]
	k32, k64 := st.key32, st.key64
	ht := st.build.ht
	gath := st.gathers
	for {
		m, ok := p.disp.Next()
		if !ok {
			return
		}
	rows:
		for i := m.Begin; i < m.End; i++ {
			if c32a != nil {
				if v := int64(c32a[i]); v < lo32a || v > hi32a {
					continue rows
				}
			}
			if c32b != nil {
				if v := int64(c32b[i]); v < lo32b || v > hi32b {
					continue rows
				}
			}
			if c64a != nil {
				if v := c64a[i]; v < lo64a || v > hi64a {
					continue rows
				}
			}
			if c64b != nil {
				if v := c64b[i]; v < lo64b || v > hi64b {
					continue rows
				}
			}
			var k uint64
			if k32 != nil {
				k = uint64(uint32(k32[i]))
			} else {
				k = uint64(k64[i])
			}
			ref := ht.Lookup(hashtable.Mix64(k))
			for {
				if ref == 0 {
					continue rows
				}
				if row := ht.Row(ref); row[0] == k {
					for _, g := range gath {
						frame[g.slot] = int64(row[g.word])
					}
					break
				}
				ref = ht.Next(ref)
			}
			sink(i, frame)
		}
	}
}

// runGeneric handles every remaining shape: wide filter cascades,
// generic predicates, multi-probe pipelines, and probe residuals.
func (p *pipe) runGeneric(frame []int64, sink func(i int, fr []int64)) {
	f := &p.filt
	steps := p.steps
	for {
		m, ok := p.disp.Next()
		if !ok {
			return
		}
	rows:
		for i := m.Begin; i < m.End; i++ {
			for _, b := range f.b32 {
				if v := int64(b.col[i]); v < b.lo || v > b.hi {
					continue rows
				}
			}
			for _, b := range f.b64 {
				if v := b.col[i]; v < b.lo || v > b.hi {
					continue rows
				}
			}
			for _, s := range f.strs {
				if bytes.Equal(s.heap.Get(i), s.val) != s.eq {
					continue rows
				}
			}
			for _, pr := range f.preds {
				if !pr(i, frame) {
					continue rows
				}
			}
			for _, st := range steps {
				var k uint64
				if st.key32 != nil {
					k = uint64(uint32(st.key32[i]))
				} else {
					k = uint64(st.key64[i])
				}
				ht := st.build.ht
				ref := ht.Lookup(hashtable.Mix64(k))
				for {
					if ref == 0 {
						continue rows
					}
					if row := ht.Row(ref); row[0] == k {
						for _, g := range st.gathers {
							frame[g.slot] = int64(row[g.word])
						}
						break
					}
					ref = ht.Next(ref)
				}
				for _, r := range st.residuals {
					if r.a(i, frame) != r.b(i, frame) {
						continue rows
					}
				}
			}
			sink(i, frame)
		}
	}
}

// runBuild drains the pipeline into its shard of the shared hash table
// (key in word 0, payloads after), ready for the post-barrier insert.
func (p *pipe) runBuild(wid int) {
	ht := p.ht
	sh := ht.Shard(wid)
	keyGet, payGet := p.keyGet, p.payGet
	p.run(func(i int, fr []int64) {
		k := keyGet(i, fr)
		ref, _ := sh.Alloc(ht, hashtable.Mix64(k))
		row := ht.Row(ref)
		row[0] = k
		for j, get := range payGet {
			row[1+j] = get(i, fr)
		}
	})
}

// groupSpec is the compiled form of one aggregate slot.
type groupSpec struct {
	op  logical.AggOp
	val scalarFn // nil for COUNT
}

// compileAggs compiles the aggregate slots' input expressions.
func (p *pipe) compileAggs(agg *logical.Aggregate) ([]groupSpec, error) {
	specs := make([]groupSpec, len(agg.Aggs))
	for j, s := range agg.Aggs {
		specs[j].op = s.Op
		if s.Op != logical.OpCount {
			v, err := p.scalar(s.Arg)
			if err != nil {
				return nil, err
			}
			specs[j].val = v
		}
	}
	return specs, nil
}

// groupKeyGet compiles the grouping-key expression: one key is its word
// representation, two pack lo|hi<<32 — the same encoding the vectorized
// lowering and the hand-written plans use, decoded by DecodeGroupKey.
func (p *pipe) groupKeyGet(agg *logical.Aggregate) (u64Fn, error) {
	k0, err := p.u64Get(p.resolve(agg.Keys[0]))
	if err != nil {
		return nil, err
	}
	if len(agg.Keys) == 1 {
		return k0, nil
	}
	k1, err := p.u64Get(p.resolve(agg.Keys[1]))
	if err != nil {
		return nil, err
	}
	return func(i int, fr []int64) uint64 {
		return uint64(uint32(k0(i, fr))) | k1(i, fr)<<32
	}, nil
}

// runGrouped is phase one of the keyed aggregation: fused scan/probe
// loop feeding a cache-resident pre-aggregation table, overflow and
// final flush spilling partition-partial rows [hash, key, aggs...].
// A non-nil nOut (telemetry-instrumented executions) counts the rows
// reaching the sink in a worker-local counter; nil leaves the fused
// loop untouched.
func (p *pipe) runGrouped(wid int, specs []groupSpec, keyGet u64Fn, spill *hashtable.Spill, nOut *int64) {
	local := hashtable.New(1+len(specs), 1)
	local.Prepare(preAggCapacity)
	lsh := local.Shard(0)

	body := func(i int, fr []int64) {
		k := keyGet(i, fr)
		h := hashtable.Mix64(k)
		for ref := local.Lookup(h); ref != 0; ref = local.Next(ref) {
			row := local.Row(ref)
			if row[0] != k {
				continue
			}
			for j := range specs {
				s := &specs[j]
				switch s.op {
				case logical.OpSum:
					row[1+j] += uint64(s.val(i, fr))
				case logical.OpCount:
					row[1+j]++
				case logical.OpMin:
					if v := s.val(i, fr); v < int64(row[1+j]) {
						row[1+j] = uint64(v)
					}
				case logical.OpMax:
					if v := s.val(i, fr); v > int64(row[1+j]) {
						row[1+j] = uint64(v)
					}
				}
			}
			return
		}
		if local.Rows() < preAggCapacity {
			ref, _ := lsh.Alloc(local, h)
			row := local.Row(ref)
			row[0] = k
			for j := range specs {
				row[1+j] = initWord(&specs[j], i, fr)
			}
			local.Insert(ref, h)
		} else {
			row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
			row[0] = h
			row[1] = k
			for j := range specs {
				row[2+j] = initWord(&specs[j], i, fr)
			}
		}
	}
	if nOut != nil {
		inner := body
		body = func(i int, fr []int64) {
			*nOut++
			inner(i, fr)
		}
	}
	p.run(body)

	local.ForEach(func(ref hashtable.Ref) {
		h := local.Hash(ref)
		row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
		row[0] = h
		row[1] = local.Word(ref, 0)
		for j := range specs {
			row[2+j] = local.Word(ref, 1+j)
		}
	})
}

// initWord is a new group's first partial value for one slot.
func initWord(s *groupSpec, i int, fr []int64) uint64 {
	if s.op == logical.OpCount {
		return 1
	}
	return uint64(s.val(i, fr))
}

// runGlobal reduces the final pipeline to one worker's accumulators —
// the fused form of the generic global-aggregate sink, merged by
// logical.MergeGlobal so the empty-input semantics stay identical.
func (p *pipe) runGlobal(wid int, specs []groupSpec) logical.GlobalPartial {
	acc := make([]int64, len(specs))
	for j := range specs {
		switch specs[j].op {
		case logical.OpMin:
			acc[j] = math.MaxInt64
		case logical.OpMax:
			acc[j] = math.MinInt64
		}
	}
	var n int64
	p.run(func(i int, fr []int64) {
		n++
		for j := range specs {
			s := &specs[j]
			switch s.op {
			case logical.OpSum:
				acc[j] += s.val(i, fr)
			case logical.OpCount:
				acc[j]++
			case logical.OpMin:
				if v := s.val(i, fr); v < acc[j] {
					acc[j] = v
				}
			case logical.OpMax:
				if v := s.val(i, fr); v > acc[j] {
					acc[j] = v
				}
			}
		}
	})
	return logical.GlobalPartial{Acc: acc, N: n}
}

// runProject materializes projection rows for one worker.
func (p *pipe) runProject(wid int, items []scalarFn) [][]int64 {
	var out [][]int64
	p.run(func(i int, fr []int64) {
		row := make([]int64, len(items))
		for j, v := range items {
			row[j] = v(i, fr)
		}
		out = append(out, row)
	})
	return out
}

// runProjectStream is runProject flushing rows to the worker's stream
// buffer instead of materializing — projection rows are already in
// item layout. A non-nil nOut counts the flushed rows (telemetry).
func (p *pipe) runProjectStream(items []scalarFn, buf *logical.StreamBuf, nOut *int64) {
	p.run(func(i int, fr []int64) {
		if nOut != nil {
			*nOut++
		}
		row := make([]int64, len(items))
		for j, v := range items {
			row[j] = v(i, fr)
		}
		buf.Add(row)
	})
}
