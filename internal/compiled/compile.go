package compiled

import (
	"bytes"
	"math"
	"unsafe"

	"paradigms/internal/catalog"
	"paradigms/internal/sql"
	"paradigms/internal/storage"
)

// The row-level expression compiler: bound SQL expressions become
// closures specialized by column type and scale, evaluated one tuple at
// a time inside the fused pipeline loops — the Typer-idiom counterpart
// of internal/logical's vector compiler. Value representation matches
// the vectorized lowering exactly: base 32-bit columns sign-extend,
// columns gathered through a hash probe travel as zero-extended 64-bit
// words, so the two backends produce bit-identical rows.

// scalarFn evaluates an int64 value for one row; fr is the pipeline's
// gather frame (nil-safe for expressions over base columns only).
type scalarFn func(i int, fr []int64) int64

// predFn evaluates a boolean for one row.
type predFn func(i int, fr []int64) bool

// u64Fn produces the 64-bit word representation of a value (join keys,
// hash-table payloads, residual comparisons): 32-bit base columns
// zero-extend, 64-bit columns pass through, frame slots are raw words.
type u64Fn func(i int, fr []int64) uint64

// view32 and view64 reinterpret a typed column as its machine layout so
// filter bounds and key accessors are free of per-row type dispatch.
// (~int32 and ~int64 guarantee identical memory layout.)
func view32[T ~int32](s []T) []int32 {
	if len(s) == 0 {
		return []int32{}
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&s[0])), len(s))
}

func view64[T ~int64](s []T) []int64 {
	if len(s) == 0 {
		return []int64{}
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&s[0])), len(s))
}

// baseViews returns the 32-bit or 64-bit machine view of a base column
// (exactly one of the two results is non-nil on success).
func baseViews(c *catalog.Column) ([]int32, []int64, error) {
	rel := c.Table.Rel
	switch c.Type.Kind {
	case catalog.Int32:
		return view32(rel.Int32(c.Name)), nil, nil
	case catalog.Date:
		return view32(rel.Date(c.Name)), nil, nil
	case catalog.Numeric:
		return nil, view64(rel.Numeric(c.Name)), nil
	case catalog.Int64:
		return nil, view64(rel.Int64(c.Name)), nil
	}
	return nil, nil, sql.Errf(sql.Pos{Line: 1, Col: 1},
		"%s column %q cannot be a key or value", c.Type.Kind, c.Name)
}

// u64Get compiles a value source to its word representation — the same
// encoding the vectorized lowering uses for keys and payloads (32-bit
// zero-extension via MapWiden, 64-bit passthrough).
func (p *pipe) u64Get(v valRef) (u64Fn, error) {
	if v.base == nil {
		slot := v.slot
		return func(i int, fr []int64) uint64 { return uint64(fr[slot]) }, nil
	}
	c32, c64, err := baseViews(v.base)
	if err != nil {
		return nil, err
	}
	if c32 != nil {
		return func(i int, fr []int64) uint64 { return uint64(uint32(c32[i])) }, nil
	}
	return func(i int, fr []int64) uint64 { return uint64(c64[i]) }, nil
}

// ---------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------

// scalar compiles a value expression into a per-row closure within the
// pipeline. Base column reads sign-extend (like the vectorized fetch
// primitives); frame slots are read as the stored words.
func (p *pipe) scalar(e sql.Expr) (scalarFn, error) {
	switch x := e.(type) {
	case *sql.NumLit:
		v := x.Val
		return func(int, []int64) int64 { return v }, nil
	case *sql.DateLit:
		v := int64(x.Days)
		return func(int, []int64) int64 { return v }, nil
	case *sql.ColRef:
		return p.colScalar(x.Col)
	case *sql.Binary:
		switch x.Op {
		case sql.OpMul:
			if f := p.mulColsFast(x); f != nil {
				return f, nil
			}
			return p.binScalar(x, func(l, r int64) int64 { return l * r })
		case sql.OpAdd:
			return p.binScalar(x, func(l, r int64) int64 { return l + r })
		case sql.OpSub:
			if f := p.rsubConstFast(x); f != nil {
				return f, nil
			}
			return p.binScalar(x, func(l, r int64) int64 { return l - r })
		}
	}
	return nil, sql.Errf(e.Pos(), "compiled: unsupported value expression %s", sql.String(e))
}

func (p *pipe) binScalar(x *sql.Binary, op func(l, r int64) int64) (scalarFn, error) {
	l, err := p.scalar(x.L)
	if err != nil {
		return nil, err
	}
	r, err := p.scalar(x.R)
	if err != nil {
		return nil, err
	}
	return func(i int, fr []int64) int64 { return op(l(i, fr), r(i, fr)) }, nil
}

// colScalar reads one column as a signed value.
func (p *pipe) colScalar(c *catalog.Column) (scalarFn, error) {
	src := p.resolve(c)
	if src.base == nil {
		slot := src.slot
		return func(i int, fr []int64) int64 { return fr[slot] }, nil
	}
	c32, c64, err := baseViews(c)
	if err != nil {
		return nil, err
	}
	if c32 != nil {
		return func(i int, fr []int64) int64 { return int64(c32[i]) }, nil
	}
	return func(i int, fr []int64) int64 { return c64[i] }, nil
}

// mulColsFast fuses col*col over two 64-bit base columns into a single
// closure (the revenue input of Q6 and Q1.1).
func (p *pipe) mulColsFast(x *sql.Binary) scalarFn {
	l := p.base64Col(x.L)
	r := p.base64Col(x.R)
	if l == nil || r == nil {
		return nil
	}
	return func(i int, fr []int64) int64 { return l[i] * r[i] }
}

// rsubConstFast fuses literal-col over a 64-bit base column (the
// 1 - l_discount of every revenue expression), pre-scaled by the binder.
func (p *pipe) rsubConstFast(x *sql.Binary) scalarFn {
	lit, ok := x.L.(*sql.NumLit)
	if !ok {
		return nil
	}
	col := p.base64Col(x.R)
	if col == nil {
		return nil
	}
	c := lit.Val
	return func(i int, fr []int64) int64 { return c - col[i] }
}

// base64Col returns the machine view of a 64-bit-wide base column
// reference of the pipeline's spine, or nil.
func (p *pipe) base64Col(e sql.Expr) []int64 {
	ref, ok := e.(*sql.ColRef)
	if !ok || ref.Col.Table != p.scan.Table {
		return nil
	}
	rel := p.scan.Table.Rel
	switch ref.Col.Type.Kind {
	case catalog.Numeric:
		return view64(rel.Numeric(ref.Col.Name))
	case catalog.Int64:
		return view64(rel.Int64(ref.Col.Name))
	}
	return nil
}

// ---------------------------------------------------------------------
// Filter cascade
// ---------------------------------------------------------------------

// bound32/bound64 are inclusive per-column range checks, the normalized
// form of every pushed-down col-vs-literal comparison. They are checked
// inline in the fused scan loop (no closure call), which is what keeps
// the compiled backend's filter cost at the hand-written engine's level.
type bound32 struct {
	col    []int32
	lo, hi int64
}

type bound64 struct {
	col    []int64
	lo, hi int64
}

// strEq is an inline string-equality filter (col = 'literal' or
// col <> 'literal') against the column's heap.
type strEq struct {
	heap *storage.StringHeap
	val  []byte
	eq   bool
}

// filt is a pipeline's compiled filter cascade: range bounds first
// (cheapest, most common), then string equalities (checked inline, no
// closure), then generic predicates.
type filt struct {
	b32   []bound32
	b64   []bound64
	strs  []strEq
	preds []predFn
}

// compileFilters classifies the scan's pushed-down conjuncts. Ordered
// col-vs-literal comparisons fold into per-column range bounds
// (intersecting repeated bounds on one column, e.g. the two shipdate
// conjuncts of Q6); string (in)equalities against literals check the
// heap inline; everything else compiles to a per-row predicate.
func (p *pipe) compileFilters() error {
	at := map[*catalog.Column]int{} // column → index into b32/b64 (disjoint)
	for _, f := range p.scan.Filters {
		if s, ok := p.strEqOf(f); ok {
			p.filt.strs = append(p.filt.strs, s)
			continue
		}
		col, lo, hi, ok := p.rangeOf(f)
		if !ok {
			pred, err := p.pred(f)
			if err != nil {
				return err
			}
			p.filt.preds = append(p.filt.preds, pred)
			continue
		}
		if idx, seen := at[col]; seen {
			switch col.Type.Kind {
			case catalog.Int32, catalog.Date:
				b := &p.filt.b32[idx]
				b.lo, b.hi = max(b.lo, lo), min(b.hi, hi)
			default:
				b := &p.filt.b64[idx]
				b.lo, b.hi = max(b.lo, lo), min(b.hi, hi)
			}
			continue
		}
		c32, c64, err := baseViews(col)
		if err != nil {
			return err
		}
		if c32 != nil {
			at[col] = len(p.filt.b32)
			p.filt.b32 = append(p.filt.b32, bound32{col: c32, lo: lo, hi: hi})
		} else {
			at[col] = len(p.filt.b64)
			p.filt.b64 = append(p.filt.b64, bound64{col: c64, lo: lo, hi: hi})
		}
	}
	return nil
}

// strEqOf recognizes stringcol = 'lit' / stringcol <> 'lit' (either
// operand order) over the spine.
func (p *pipe) strEqOf(f sql.Expr) (strEq, bool) {
	b, ok := f.(*sql.Binary)
	if !ok || (b.Op != sql.OpEq && b.Op != sql.OpNe) {
		return strEq{}, false
	}
	ref, refOK := b.L.(*sql.ColRef)
	lit, litOK := b.R.(*sql.StrLit)
	if !refOK || !litOK {
		ref, refOK = b.R.(*sql.ColRef)
		lit, litOK = b.L.(*sql.StrLit)
	}
	if !refOK || !litOK || ref.Col.Table != p.scan.Table || ref.Col.Type.Kind != catalog.String {
		return strEq{}, false
	}
	return strEq{heap: p.scan.Table.Rel.String(ref.Col.Name), val: []byte(lit.Val), eq: b.Op == sql.OpEq}, true
}

// rangeOf recognizes col CMP literal (either operand order) over an
// ordered column of the spine and returns the equivalent inclusive
// range.
func (p *pipe) rangeOf(f sql.Expr) (col *catalog.Column, lo, hi int64, ok bool) {
	b, isBin := f.(*sql.Binary)
	if !isBin {
		return nil, 0, 0, false
	}
	op := b.Op
	ref, refOK := b.L.(*sql.ColRef)
	lit, litOK := literalValue(b.R)
	if !refOK || !litOK {
		if ref, refOK = b.R.(*sql.ColRef); !refOK {
			return nil, 0, 0, false
		}
		if lit, litOK = literalValue(b.L); !litOK {
			return nil, 0, 0, false
		}
		switch op { // literal CMP col flips the comparison
		case sql.OpLt:
			op = sql.OpGt
		case sql.OpLe:
			op = sql.OpGe
		case sql.OpGt:
			op = sql.OpLt
		case sql.OpGe:
			op = sql.OpLe
		}
	}
	if ref.Col.Table != p.scan.Table || !ref.Col.Type.IsNumeric() {
		return nil, 0, 0, false
	}
	lo, hi = math.MinInt64, math.MaxInt64
	switch op {
	case sql.OpEq:
		lo, hi = lit, lit
	case sql.OpGe:
		lo = lit
	case sql.OpGt:
		if lit == math.MaxInt64 {
			return nil, 0, 0, false
		}
		lo = lit + 1
	case sql.OpLe:
		hi = lit
	case sql.OpLt:
		if lit == math.MinInt64 {
			return nil, 0, 0, false
		}
		hi = lit - 1
	default:
		return nil, 0, 0, false
	}
	return ref.Col, lo, hi, true
}

func literalValue(e sql.Expr) (int64, bool) {
	switch x := e.(type) {
	case *sql.NumLit:
		return x.Val, true
	case *sql.DateLit:
		return int64(x.Days), true
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Generic predicates
// ---------------------------------------------------------------------

// pred compiles an arbitrary predicate (OR, NOT, IN lists, string
// comparisons, arithmetic comparisons) to a per-row closure — the
// compiled counterpart of the vectorized lowering's generic row
// predicate, covering the same expression shapes.
func (p *pipe) pred(e sql.Expr) (predFn, error) {
	switch x := e.(type) {
	case *sql.Not:
		inner, err := p.pred(x.X)
		if err != nil {
			return nil, err
		}
		return func(i int, fr []int64) bool { return !inner(i, fr) }, nil
	case *sql.Between:
		v, err := p.scalar(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := p.scalar(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := p.scalar(x.Hi)
		if err != nil {
			return nil, err
		}
		neg := x.Negate
		return func(i int, fr []int64) bool {
			val := v(i, fr)
			return (val >= lo(i, fr) && val <= hi(i, fr)) != neg
		}, nil
	case *sql.InList:
		return p.inPred(x)
	case *sql.Binary:
		switch x.Op {
		case sql.OpAnd:
			l, err := p.pred(x.L)
			if err != nil {
				return nil, err
			}
			r, err := p.pred(x.R)
			if err != nil {
				return nil, err
			}
			return func(i int, fr []int64) bool { return l(i, fr) && r(i, fr) }, nil
		case sql.OpOr:
			l, err := p.pred(x.L)
			if err != nil {
				return nil, err
			}
			r, err := p.pred(x.R)
			if err != nil {
				return nil, err
			}
			return func(i int, fr []int64) bool { return l(i, fr) || r(i, fr) }, nil
		case sql.OpEq, sql.OpNe:
			if pr, ok, err := p.strEqPred(x); ok || err != nil {
				return pr, err
			}
			return p.cmpPred(x)
		case sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return p.cmpPred(x)
		}
	}
	return nil, sql.Errf(e.Pos(), "compiled: unsupported predicate %s", sql.String(e))
}

func (p *pipe) cmpPred(x *sql.Binary) (predFn, error) {
	l, err := p.scalar(x.L)
	if err != nil {
		return nil, err
	}
	r, err := p.scalar(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case sql.OpEq:
		return func(i int, fr []int64) bool { return l(i, fr) == r(i, fr) }, nil
	case sql.OpNe:
		return func(i int, fr []int64) bool { return l(i, fr) != r(i, fr) }, nil
	case sql.OpLt:
		return func(i int, fr []int64) bool { return l(i, fr) < r(i, fr) }, nil
	case sql.OpLe:
		return func(i int, fr []int64) bool { return l(i, fr) <= r(i, fr) }, nil
	case sql.OpGt:
		return func(i int, fr []int64) bool { return l(i, fr) > r(i, fr) }, nil
	case sql.OpGe:
		return func(i int, fr []int64) bool { return l(i, fr) >= r(i, fr) }, nil
	}
	panic("compiled: not a comparison")
}

// strGet resolves a string operand (string column of the spine, or
// literal) to a per-row byte getter.
func (p *pipe) strGet(e sql.Expr) (func(i int) []byte, bool) {
	switch x := e.(type) {
	case *sql.StrLit:
		v := []byte(x.Val)
		return func(int) []byte { return v }, true
	case *sql.ColRef:
		if x.Col.Type.Kind == catalog.String && x.Col.Table == p.scan.Table {
			heap := p.scan.Table.Rel.String(x.Col.Name)
			return func(i int) []byte { return heap.Get(i) }, true
		}
	}
	return nil, false
}

// strEqPred recognizes string equality/inequality between a string
// column and a literal (or two string columns of the spine).
func (p *pipe) strEqPred(x *sql.Binary) (predFn, bool, error) {
	l, lok := p.strGet(x.L)
	r, rok := p.strGet(x.R)
	if !lok && !rok {
		return nil, false, nil
	}
	if !lok || !rok {
		return nil, true, sql.Errf(x.P, "cannot compare %s with %s", sql.String(x.L), sql.String(x.R))
	}
	eq := x.Op == sql.OpEq
	return func(i int, fr []int64) bool { return bytes.Equal(l(i), r(i)) == eq }, true, nil
}

// inPred compiles x [NOT] IN (...) over strings or numeric values.
func (p *pipe) inPred(x *sql.InList) (predFn, error) {
	if get, isStr := p.strGet(x.X); isStr {
		var lits [][]byte
		for _, l := range x.List {
			s, ok := l.(*sql.StrLit)
			if !ok {
				return nil, sql.Errf(l.Pos(), "IN list over a string column needs string literals")
			}
			lits = append(lits, []byte(s.Val))
		}
		neg := x.Negate
		return func(i int, fr []int64) bool {
			v := get(i)
			for _, l := range lits {
				if bytes.Equal(v, l) {
					return !neg
				}
			}
			return neg
		}, nil
	}
	v, err := p.scalar(x.X)
	if err != nil {
		return nil, err
	}
	items := make([]scalarFn, len(x.List))
	for i, l := range x.List {
		if items[i], err = p.scalar(l); err != nil {
			return nil, err
		}
	}
	neg := x.Negate
	return func(i int, fr []int64) bool {
		val := v(i, fr)
		for _, it := range items {
			if it(i, fr) == val {
				return !neg
			}
		}
		return neg
	}, nil
}
