package compiled

import (
	"context"
	"sync"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"
	"paradigms/internal/typer"
)

var (
	benchOnce sync.Once
	benchDB   *storage.Database
)

func benchTPCH() *storage.Database {
	benchOnce.Do(func() { benchDB = tpch.Generate(0.1, 0) })
	return benchDB
}

// BenchmarkSQLCompiledVsHandTyper compares each compiled-lowered SQL
// query against the hand-written fused Typer monolith, single-threaded.
// The acceptance bound of the compiled backend is lowered Q6 and Q3
// within 15% of the hand-written pipelines — the price of closure-based
// expression evaluation over committed generated code.
func BenchmarkSQLCompiledVsHandTyper(b *testing.B) {
	db := benchTPCH()
	ctx := context.Background()
	for _, name := range []string{"Q6", "Q3"} {
		text, _ := logical.SQLText("tpch", name)
		pl, err := logical.Prepare(db, text)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/sql-compiled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Execute(ctx, pl, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/hand-typer", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				switch name {
				case "Q6":
					typer.Q6(db, 1)
				case "Q3":
					typer.Q3(db, 1)
				}
			}
		})
	}
}

// BenchmarkCompiledLowering isolates the lower + closure-compile cost
// (no execution): per-statement overhead of the compiled backend.
func BenchmarkCompiledLowering(b *testing.B) {
	db := benchTPCH()
	text, _ := logical.SQLText("tpch", "Q5")
	pl, err := logical.Prepare(db, text)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lower(pl); err != nil {
			b.Fatal(err)
		}
	}
}
