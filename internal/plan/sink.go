package plan

import (
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/tw"
	"paradigms/internal/vector"
)

// Sink terminates a pipeline: Consume absorbs one non-empty batch;
// Finish completes the stage on every worker — flushing local state and
// crossing whatever barrier the downstream pipeline needs (buffer
// ownership: a sink only writes shared state that is either sharded per
// worker or protected by its Finish barrier).
type Sink interface {
	Consume(b *Batch)
	Finish(bar *exec.Barrier, wid int)
}

// ---------------------------------------------------------------------
// HashBuildSink
// ---------------------------------------------------------------------

// HashBuildSink materializes a pipeline's output into a shared hash
// table shard (bulk-allocate + scatter, Figure 2b's build side) and
// publishes the table with the two-barrier build protocol in Finish.
// Payloads land in payload words 1..len(payloads).
type HashBuildSink struct {
	ht       *hashtable.Table
	sh       *hashtable.Shard
	key      VecU64
	hash     HashFn
	payloads []VecU64
	keyBuf   []uint64
	hashes   []uint64
	payBufs  [][]uint64
}

// NewHashBuild creates the build sink for one worker's shard.
func NewHashBuild(bufs *vector.Buffers, ht *hashtable.Table, wid int, key VecU64, payloads ...VecU64) *HashBuildSink {
	payBufs := make([][]uint64, len(payloads))
	for i := range payBufs {
		payBufs[i] = bufs.Ref()
	}
	return &HashBuildSink{
		ht:       ht,
		sh:       ht.Shard(wid),
		key:      key,
		payloads: payloads,
		keyBuf:   bufs.Ref(),
		hashes:   bufs.Ref(),
		payBufs:  payBufs,
	}
}

// SetHash overrides the build-side hash function (nil = engine
// default). Probers of the table must hash the same way; the hybrid
// executor sets the same HashFn on both sides of every join table that
// crosses an engine boundary.
func (h *HashBuildSink) SetHash(fn HashFn) { h.hash = fn }

// Consume implements Sink.
func (h *HashBuildSink) Consume(b *Batch) {
	keys := h.key(b, h.keyBuf)
	if h.hash != nil {
		h.hash(keys[:b.K], h.hashes)
	} else {
		tw.MapHashU64(keys[:b.K], h.hashes)
	}
	base := h.sh.AllocN(h.ht, b.K)
	tw.ScatterHashes(h.ht, base, h.hashes, b.K)
	tw.ScatterWord(h.ht, base, 0, keys, b.K)
	for j, p := range h.payloads {
		tw.ScatterWord(h.ht, base, 1+j, p(b, h.payBufs[j]), b.K)
	}
}

// Finish implements Sink: size the shared directory once, then every
// worker inserts its shard.
func (h *HashBuildSink) Finish(bar *exec.Barrier, wid int) {
	tw.BuildBarrier(h.ht, bar, wid)
}

// ---------------------------------------------------------------------
// GroupBySink
// ---------------------------------------------------------------------

// GroupBySink feeds the shared two-phase aggregation: phase one is
// tw.GroupBy (find-groups / handle-misses / update-aggregates per
// vector); Finish spills the worker's pre-aggregated groups and crosses
// the barrier, after which a merge stage drains the spill partitions.
type GroupBySink struct {
	gb     *tw.GroupBy
	key    VecU64
	vals   []VecI64
	keyBuf []uint64
	hashes []uint64
	valBuf [][]int64
	dense  [][]int64
}

// NewGroupBy creates phase-one aggregation state for one worker.
func NewGroupBy(bufs *vector.Buffers, spill *hashtable.Spill, wid int, ops []hashtable.AggOp, key VecU64, vals ...VecI64) *GroupBySink {
	valBuf := make([][]int64, len(vals))
	for i := range valBuf {
		valBuf[i] = bufs.I64()
	}
	return &GroupBySink{
		gb:     tw.NewGroupBy(spill, wid, ops, bufs.Size()),
		key:    key,
		vals:   vals,
		keyBuf: bufs.Ref(),
		hashes: bufs.Ref(),
		valBuf: valBuf,
		dense:  make([][]int64, len(vals)),
	}
}

// Consume implements Sink.
func (g *GroupBySink) Consume(b *Batch) {
	keys := g.key(b, g.keyBuf)
	tw.MapHashU64(keys[:b.K], g.hashes)
	for j, v := range g.vals {
		g.dense[j] = v(b, g.valBuf[j])
	}
	g.gb.Consume(b.K, keys, g.hashes, g.dense)
}

// Finish implements Sink.
func (g *GroupBySink) Finish(bar *exec.Barrier, wid int) {
	g.gb.Flush()
	bar.Wait(nil)
}

// MergeStage drains aggregation spill partitions (phase two,
// hashtable.MergeSpill — identical code for both engines) and emits each
// merged group row to the caller.
func MergeStage(partDisp *exec.Dispatcher, spill *hashtable.Spill, ops []hashtable.AggOp, emit func(wid int, row []uint64)) Stage {
	return Stage{Run: func(wid int) {
		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				emit(wid, row)
			})
		}
	}}
}

// ---------------------------------------------------------------------
// SumSink
// ---------------------------------------------------------------------

// SumSink reduces a value expression to one running int64 per worker
// (ungrouped aggregation, e.g. Q6); Finish stores the partial for the
// query's final merge.
type SumSink struct {
	val VecI64
	buf []int64
	sum int64
	out *int64
}

// NewSum creates the sink; the worker's partial lands in *out.
func NewSum(bufs *vector.Buffers, val VecI64, out *int64) *SumSink {
	return &SumSink{val: val, buf: bufs.I64(), out: out}
}

// Consume implements Sink.
func (s *SumSink) Consume(b *Batch) {
	s.sum += tw.SumI64(s.val(b, s.buf), b.K)
}

// Finish implements Sink.
func (s *SumSink) Finish(bar *exec.Barrier, wid int) {
	*s.out = s.sum
	bar.Wait(nil)
}

// ---------------------------------------------------------------------
// ProbeEmitSink
// ---------------------------------------------------------------------

// ProbeEmitSink is a multi-match terminal probe (find-candidates /
// compare / advance with no densification): every key match is emitted
// with its entry reference, typically into a per-worker TopK (Q18's
// customer ⋈ matches → top-100 output emission).
type ProbeEmitSink struct {
	ht      *hashtable.Table
	key     VecU64
	emit    func(ref hashtable.Ref, key uint64)
	keyBuf  []uint64
	hashes  []uint64
	cand    []hashtable.Ref
	candPos []int32
}

// NewProbeEmit creates the sink.
func NewProbeEmit(bufs *vector.Buffers, ht *hashtable.Table, key VecU64, emit func(ref hashtable.Ref, key uint64)) *ProbeEmitSink {
	return &ProbeEmitSink{
		ht:      ht,
		key:     key,
		emit:    emit,
		keyBuf:  bufs.Ref(),
		hashes:  bufs.Ref(),
		cand:    make([]hashtable.Ref, bufs.Size()),
		candPos: bufs.Sel(),
	}
}

// Consume implements Sink.
func (p *ProbeEmitSink) Consume(b *Batch) {
	keys := p.key(b, p.keyBuf)
	tw.MapHashU64(keys[:b.K], p.hashes)
	nc := tw.FindCandidates(p.ht, p.hashes, b.K, p.cand, p.candPos)
	for nc > 0 {
		for i := 0; i < nc; i++ {
			ref := p.cand[i]
			pos := p.candPos[i]
			if p.ht.Hash(ref) == p.hashes[pos] && p.ht.Word(ref, 0) == keys[pos] {
				p.emit(ref, keys[pos])
			}
		}
		nc = tw.NextCandidates(p.ht, p.cand, p.candPos, nc)
	}
}

// Finish implements Sink.
func (p *ProbeEmitSink) Finish(bar *exec.Barrier, wid int) {
	bar.Wait(nil)
}
