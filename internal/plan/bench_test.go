package plan

import (
	"sync"
	"testing"

	"paradigms/internal/ssb"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"
)

var (
	benchOnce sync.Once
	benchTPCH *storage.Database
	benchSSB  *storage.Database
)

func benchDBs() (*storage.Database, *storage.Database) {
	benchOnce.Do(func() {
		benchTPCH = tpch.Generate(0.1, 0)
		benchSSB = ssb.Generate(0.1, 0)
	})
	return benchTPCH, benchSSB
}

// BenchmarkPlanQueries tracks the ported queries' single-threaded cost:
// the operator layer must stay within a few percent of the monoliths it
// replaced (the acceptance bound of the port was 10%).
func BenchmarkPlanQueries(b *testing.B) {
	db, ssbDB := benchDBs()
	b.Run("Q6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Q6(db, 1, 0)
		}
	})
	b.Run("Q3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Q3(db, 1, 0)
		}
	})
	b.Run("Q18", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Q18(db, 1, 0)
		}
	})
	b.Run("Q5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Q5(db, 1, 0)
		}
	})
	b.Run("Q2.1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SSBQ21(ssbDB, 1, 0)
		}
	})
}
