package plan

import (
	"context"

	"paradigms/internal/queries"
	"paradigms/internal/registry"
	"paradigms/internal/storage"
)

// Plain (uncancelable) wrappers for benchmarks and drivers, mirroring the
// engine packages' convention.

// Q6 executes TPC-H Q6.
func Q6(db *storage.Database, nWorkers, vecSize int) queries.Q6Result {
	return Q6Ctx(context.Background(), db, nWorkers, vecSize)
}

// Q3 executes TPC-H Q3.
func Q3(db *storage.Database, nWorkers, vecSize int) queries.Q3Result {
	return Q3Ctx(context.Background(), db, nWorkers, vecSize)
}

// Q18 executes TPC-H Q18.
func Q18(db *storage.Database, nWorkers, vecSize int) queries.Q18Result {
	return Q18Ctx(context.Background(), db, nWorkers, vecSize)
}

// Q5 executes TPC-H Q5.
func Q5(db *storage.Database, nWorkers, vecSize int) queries.Q5Result {
	return Q5Ctx(context.Background(), db, nWorkers, vecSize)
}

// SSBQ21 executes SSB Q2.1.
func SSBQ21(db *storage.Database, nWorkers, vecSize int) queries.SSBQ21Result {
	return SSBQ21Ctx(context.Background(), db, nWorkers, vecSize)
}

// runner adapts a *Ctx query to the registry's Runner shape.
func runner[T any](f func(context.Context, *storage.Database, int, int) T) registry.Runner {
	return func(ctx context.Context, db *storage.Database, opt registry.Options) any {
		return f(ctx, db, opt.Workers, opt.VectorSize)
	}
}

// The plan-based Tectorwise queries register here; the remaining
// monolithic ones register from internal/tw.
func init() {
	registry.Register(registry.Tectorwise, "tpch", "Q6", runner(Q6Ctx))
	registry.Register(registry.Tectorwise, "tpch", "Q3", runner(Q3Ctx))
	registry.Register(registry.Tectorwise, "tpch", "Q18", runner(Q18Ctx))
	registry.Register(registry.Tectorwise, "tpch", "Q5", runner(Q5Ctx))
	registry.Register(registry.Tectorwise, "ssb", "Q2.1", runner(SSBQ21Ctx))
}
