package plan

import (
	"context"

	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/tw"
	"paradigms/internal/types"
	"paradigms/internal/vector"
)

// Declarative operator plans for the Tectorwise TPC-H queries that were
// ported off their pipeline monoliths (plus Q5, which never had one).
// Each query function declares shared state, assembles one operator tree
// per worker from the stage constructors, and merges per-worker results.

// Q6Ctx executes TPC-H Q6: a selection cascade followed by a fused
// multiply-sum over the survivors.
func Q6Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q6Result {
	e := newExec(ctx, nWorkers, vecSize)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")

	disp := e.ScanDisp(li)
	partial := make([]int64, e.Workers)

	e.Run(func(wid int, bufs *vector.Buffers) []Stage {
		return []Stage{{
			Root: NewFilterChain(bufs, e.NewScan(disp),
				PredGE(ship, queries.Q6DateLo),
				PredLT(ship, queries.Q6DateHi),
				PredGE(disc, queries.Q6DiscLo),
				PredLE(disc, queries.Q6DiscHi),
				PredLT(qty, queries.Q6Quantity)),
			Sink: NewSum(bufs, MulCols(ext, disc), &partial[wid]),
		}}
	})

	var total int64
	for _, s := range partial {
		total += s
	}
	return queries.Q6Result(total)
}

// Q3Ctx executes TPC-H Q3.
func Q3Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q3Result {
	e := newExec(ctx, nWorkers, vecSize)
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	ckeys := cust.Int32("c_custkey")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	oprio := ord.Int32("o_shippriority")
	li := db.Rel("lineitem")
	lkeys := li.Int32("l_orderkey")
	lship := li.Date("l_shipdate")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	cutoff := queries.Q3Date

	htCust := hashtable.New(1, e.Workers)
	htOrd := hashtable.New(2, e.Workers)
	dispCust := e.ScanDisp(cust)
	dispOrd := e.ScanDisp(ord)
	dispLine := e.ScanDisp(li)
	ops := []hashtable.AggOp{hashtable.OpSum, hashtable.OpFirst}
	spill := hashtable.NewSpill(e.Workers, tw.AggPartitions, 2+len(ops))
	partDisp := e.PartDisp(tw.AggPartitions)
	tops := make([]*queries.TopK[queries.Q3Row], e.Workers)

	e.Run(func(wid int, bufs *vector.Buffers) []Stage {
		// Pipeline 1: customer σ(mktsegment) → HT_cust.
		buildCust := Stage{
			Root: NewFilterChain(bufs, e.NewScan(dispCust), PredEqString(seg, queries.Q3Segment)),
			Sink: NewHashBuild(bufs, htCust, wid, KeyWiden(ckeys)),
		}

		// Pipeline 2: orders σ(orderdate) ⋉ HT_cust → HT_ord.
		buildOrd := Stage{
			Root: NewHashProbe(bufs,
				NewFilterChain(bufs, e.NewScan(dispOrd), PredLT(odate, cutoff)),
				ProbeSpec{HT: htCust, Key: KeyWiden(ocust)}),
			Sink: NewHashBuild(bufs, htOrd, wid, KeyWiden(okeys), KeyPack2x32(odate, oprio)),
		}

		// Pipeline 3: lineitem σ(shipdate) ⋈ HT_ord → Γ(orderkey).
		dpI64 := bufs.I64()
		e2 := bufs.I64()
		d2 := bufs.I64()
		rev := bufs.I64()
		aggregate := Stage{
			Root: NewProject(
				NewHashProbe(bufs,
					NewFilterChain(bufs, e.NewScan(dispLine), PredGT(lship, cutoff)),
					ProbeSpec{HT: htOrd, Key: KeyWiden(lkeys),
						GatherI64: []GatherI64{{Word: 1, Dst: dpI64}}}),
				func(b *Batch) {
					tw.FetchI64(window(lext, b), b.Sel[:b.K], e2)
					tw.MapRsubConstSel(window(ldisc, b), 100, b.Sel[:b.K], d2)
					tw.MapMul(e2, d2, b.K, rev)
				}),
			Sink: NewGroupBy(bufs, spill, wid, ops, KeyWiden(lkeys), FromI64(rev), FromI64(dpI64)),
		}

		// Pipeline 4: per-partition merge into the worker's top-10.
		top := queries.NewTopK[queries.Q3Row](10, queries.Q3Less)
		tops[wid] = top
		merge := MergeStage(partDisp, spill, ops, func(_ int, row []uint64) {
			top.Offer(queries.Q3Row{
				OrderKey:     int32(uint32(row[1])),
				Revenue:      int64(row[2]),
				OrderDate:    types.Date(uint32(row[3])),
				ShipPriority: int32(uint32(row[3] >> 32)),
			})
		})

		return []Stage{buildCust, buildOrd, aggregate, merge}
	})

	final := queries.NewTopK[queries.Q3Row](10, queries.Q3Less)
	for _, t := range tops {
		final.Merge(t)
	}
	return final.Sorted()
}

// Q18Ctx executes TPC-H Q18.
func Q18Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q18Result {
	e := newExec(ctx, nWorkers, vecSize)
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	ototal := ord.Numeric("o_totalprice")
	cust := db.Rel("customer")
	ckeys := cust.Int32("c_custkey")
	minQty := int64(queries.Q18Quantity)

	dispLine := e.ScanDisp(li)
	dispOrd := e.ScanDisp(ord)
	dispCust := e.ScanDisp(cust)
	ops := []hashtable.AggOp{hashtable.OpSum}
	spill := hashtable.NewSpill(e.Workers, tw.AggPartitions, 2+len(ops))
	partDisp := e.PartDisp(tw.AggPartitions)
	htBig := hashtable.New(2, 1)
	htMatch := hashtable.New(4, e.Workers)
	type bigGroup struct {
		key    uint64
		sumQty int64
	}
	qualifying := make([][]bigGroup, e.Workers)
	tops := make([]*queries.TopK[queries.Q18Row], e.Workers)

	e.Run(func(wid int, bufs *vector.Buffers) []Stage {
		// Pipeline 1: Γ(lineitem by orderkey): the 1.5M·SF-group
		// aggregation that dominates this query.
		aggregate := Stage{
			Root: e.NewScan(dispLine),
			Sink: NewGroupBy(bufs, spill, wid, ops, KeyWiden(lok), ColI64(lqty)),
		}

		// Pipeline 2: merge partitions; HAVING sum(qty) > 300.
		having := MergeStage(partDisp, spill, ops, func(wid int, row []uint64) {
			if int64(row[2]) > minQty {
				qualifying[wid] = append(qualifying[wid], bigGroup{key: row[1], sumQty: int64(row[2])})
			}
		})

		// The few qualifying groups become a shared build side (single
		// worker, behind the plan barrier).
		buildBig := Stage{Run: func(wid int) {
			e.Wait(func() {
				total := 0
				for _, q := range qualifying {
					total += len(q)
				}
				htBig.Prepare(total)
				sh := htBig.Shard(0)
				for _, qs := range qualifying {
					for _, qg := range qs {
						h := tw.Hash(qg.key)
						ref, _ := sh.Alloc(htBig, h)
						htBig.SetWord(ref, 0, qg.key)
						htBig.SetWord(ref, 1, uint64(qg.sumQty))
						htBig.Insert(ref, h)
					}
				}
			})
		}}

		// Pipeline 3: orders ⋈ HT_big → HT_match keyed by custkey.
		sq := bufs.I64()
		buildMatch := Stage{
			Root: NewHashProbe(bufs, e.NewScan(dispOrd),
				ProbeSpec{HT: htBig, Key: KeyWiden(okeys),
					GatherI64: []GatherI64{{Word: 1, Dst: sq}}}),
			Sink: NewHashBuild(bufs, htMatch, wid, KeyWiden(ocust),
				KeyPack2x32(okeys, odate), ColU64FromI64(ototal), U64FromI64(sq)),
		}

		// Pipeline 4: customer ⋈ HT_match (multi-match); offers go
		// straight to the worker's top-100 sink.
		top := queries.NewTopK[queries.Q18Row](100, queries.Q18Less)
		tops[wid] = top
		emit := Stage{
			Root: e.NewScan(dispCust),
			Sink: NewProbeEmit(bufs, htMatch, KeyWiden(ckeys), func(ref hashtable.Ref, key uint64) {
				od := htMatch.Word(ref, 1)
				top.Offer(queries.Q18Row{
					CustKey:    int32(uint32(key)),
					OrderKey:   int32(uint32(od)),
					OrderDate:  types.Date(uint32(od >> 32)),
					TotalPrice: types.Numeric(int64(htMatch.Word(ref, 2))),
					SumQty:     int64(htMatch.Word(ref, 3)),
				})
			}),
		}

		return []Stage{aggregate, having, buildBig, buildMatch, emit}
	})

	final := queries.NewTopK[queries.Q18Row](100, queries.Q18Less)
	for _, t := range tops {
		final.Merge(t)
	}
	return final.Sorted()
}

// Q5Ctx executes TPC-H Q5 — the query this layer was built to make
// cheap: it exists only as a plan, never as a monolith. The region ⋈
// nation join is folded into queries.Q5NationLUT (both engines' plans
// share it); the c_nation = s_nation residual is a Match operator over
// the two gathered payload vectors.
func Q5Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q5Result {
	e := newExec(ctx, nWorkers, vecSize)
	lut := queries.Q5NationLUT(db)
	supp := db.Rel("supplier")
	skeys := supp.Int32("s_suppkey")
	snat := supp.Int32("s_nationkey")
	cust := db.Rel("customer")
	ckeys := cust.Int32("c_custkey")
	cnat := cust.Int32("c_nationkey")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	lsk := li.Int32("l_suppkey")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")

	htSupp := hashtable.New(2, e.Workers)
	htCust := hashtable.New(2, e.Workers)
	htOrd := hashtable.New(2, e.Workers)
	dispSupp := e.ScanDisp(supp)
	dispCust := e.ScanDisp(cust)
	dispOrd := e.ScanDisp(ord)
	dispLine := e.ScanDisp(li)
	ops := []hashtable.AggOp{hashtable.OpSum}
	spill := hashtable.NewSpill(e.Workers, tw.AggPartitions, 2+len(ops))
	partDisp := e.PartDisp(tw.AggPartitions)
	results := make([]queries.Q5Result, e.Workers)

	e.Run(func(wid int, bufs *vector.Buffers) []Stage {
		// Pipeline 1: supplier σ(nation∈ASIA) → HT_supp (payload nation).
		buildSupp := Stage{
			Root: NewFilterChain(bufs, e.NewScan(dispSupp), PredLUT(snat, lut)),
			Sink: NewHashBuild(bufs, htSupp, wid, KeyWiden(skeys), KeyWiden(snat)),
		}

		// Pipeline 2: customer σ(nation∈ASIA) → HT_cust (payload nation).
		buildCust := Stage{
			Root: NewFilterChain(bufs, e.NewScan(dispCust), PredLUT(cnat, lut)),
			Sink: NewHashBuild(bufs, htCust, wid, KeyWiden(ckeys), KeyWiden(cnat)),
		}

		// Pipeline 3: orders σ(orderdate) ⋈ HT_cust → HT_ord
		// (orderkey → customer nation).
		cnOrd := bufs.Ref()
		buildOrd := Stage{
			Root: NewHashProbe(bufs,
				NewFilterChain(bufs, e.NewScan(dispOrd),
					PredGE(odate, queries.Q5DateLo),
					PredLT(odate, queries.Q5DateHi)),
				ProbeSpec{HT: htCust, Key: KeyWiden(ocust),
					GatherU64: []GatherU64{{Word: 1, Dst: cnOrd}}}),
			Sink: NewHashBuild(bufs, htOrd, wid, KeyWiden(okeys), FromU64(cnOrd)),
		}

		// Pipeline 4: lineitem ⋈ HT_ord ⋈ HT_supp, σ(c_nation = s_nation)
		// → Γ(nation; Σ revenue).
		cn := bufs.Ref()
		sn := bufs.Ref()
		e2 := bufs.I64()
		d2 := bufs.I64()
		rev := bufs.I64()
		aggregate := Stage{
			Root: NewProject(
				NewMatch(bufs,
					NewHashProbe(bufs,
						NewHashProbe(bufs, e.NewScan(dispLine),
							ProbeSpec{HT: htOrd, Key: KeyWiden(lok),
								GatherU64: []GatherU64{{Word: 1, Dst: cn}}}),
						ProbeSpec{HT: htSupp, Key: KeyWiden(lsk),
							GatherU64: []GatherU64{{Word: 1, Dst: sn}},
							Carry:     []Carry{CarryU64(bufs, cn)}}),
					func(b *Batch, res []int32) int { return tw.SelEqCols(cn, sn, b.K, res) },
					CarryU64(bufs, cn)),
				func(b *Batch) {
					tw.FetchI64(window(lext, b), b.Sel[:b.K], e2)
					tw.MapRsubConstSel(window(ldisc, b), 100, b.Sel[:b.K], d2)
					tw.MapMul(e2, d2, b.K, rev)
				}),
			Sink: NewGroupBy(bufs, spill, wid, ops, FromU64(cn), FromI64(rev)),
		}

		// Pipeline 5: per-partition merge.
		merge := MergeStage(partDisp, spill, ops, func(wid int, row []uint64) {
			results[wid] = append(results[wid], queries.Q5Row{
				Nation:  int32(uint32(row[1])),
				Revenue: int64(row[2]),
			})
		})

		return []Stage{buildSupp, buildCust, buildOrd, aggregate, merge}
	})

	var out queries.Q5Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortQ5(out)
	return out
}
