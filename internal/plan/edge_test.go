package plan

import (
	"reflect"
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/storage"
)

// Edge-case coverage for every registered plan-based query (Q6, Q3,
// Q18, Q5, Q2.1): empty base relations (workers outnumber morsels, so
// most pipelines see no batch at all), all-false FilterChain selections
// (every vector dies in the cascade), and GroupBy sinks over zero
// surviving rows (spill partitions merge empty). Each scenario is
// asserted against the reference oracle on the same synthetic database.
// The mini databases live in internal/sqlcheck, shared with the
// compiled-backend edge suite so both engines face identical scenarios.

// checkAll runs every registered plan query on the synthetic databases
// and compares against the oracles, across worker counts that exceed
// the morsel count and vector sizes from degenerate to default.
func checkAll(t *testing.T, label string, tp, sb *storage.Database) {
	t.Helper()
	for _, workers := range []int{1, 4} {
		for _, vec := range []int{1, 1000} {
			if got, want := Q6(tp, workers, vec), queries.RefQ6(tp); got != want {
				t.Errorf("%s w=%d vec=%d Q6 = %d, want %d", label, workers, vec, got, want)
			}
			checkRows(t, label, "Q3", workers, vec, Q3(tp, workers, vec), queries.RefQ3(tp))
			checkRows(t, label, "Q18", workers, vec, Q18(tp, workers, vec), queries.RefQ18(tp))
			checkRows(t, label, "Q5", workers, vec, Q5(tp, workers, vec), queries.RefQ5(tp))
			checkRows(t, label, "Q2.1", workers, vec, SSBQ21(sb, workers, vec), queries.RefSSBQ21(sb))
		}
	}
}

// checkRows compares slice results, treating empty and nil as equal
// (the interesting property here is "no rows", not nil-ness).
func checkRows[T any](t *testing.T, label, q string, workers, vec int, got, want []T) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s w=%d vec=%d %s mismatch:\n got %v\nwant %v", label, workers, vec, q, got, want)
	}
}

func TestPlanEmptyRelations(t *testing.T) {
	tp, sb := sqlcheck.EmptyMinis()
	checkAll(t, "empty", tp, sb)
}

func TestPlanAllFalseSelections(t *testing.T) {
	// Rows exist but no predicate passes: every FilterChain narrows to
	// zero, every downstream GroupBy merges zero groups, Q18's HAVING
	// table stays empty.
	checkAll(t, "all-false", sqlcheck.MiniTPCH(10, false), sqlcheck.MiniSSB(10, false))
}

func TestPlanTinyQualifyingSets(t *testing.T) {
	// A handful of qualifying rows with more workers than morsels:
	// some workers see empty batches while others aggregate real groups.
	checkAll(t, "tiny", sqlcheck.MiniTPCH(7, true), sqlcheck.MiniSSB(7, true))
}
