package plan

import (
	"reflect"
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// Edge-case coverage for every registered plan-based query (Q6, Q3,
// Q18, Q5, Q2.1): empty base relations (workers outnumber morsels, so
// most pipelines see no batch at all), all-false FilterChain selections
// (every vector dies in the cascade), and GroupBy sinks over zero
// surviving rows (spill partitions merge empty). Each scenario is
// asserted against the reference oracle on the same synthetic database.

// miniTPCH builds a schema-compatible TPC-H instance with hand-picked
// values. n is the lineitem/orders/customer cardinality; qualify
// controls whether any row passes the queries' predicates.
func miniTPCH(n int, qualify bool) *storage.Database {
	db := storage.NewDatabase("tpch", 0)

	seg := "AUTOMOBILE"
	if qualify {
		seg = queries.Q3Segment
	}
	region := storage.NewRelation("region")
	rname := storage.NewStringHeap(1, 8)
	if qualify {
		rname.AppendString(queries.Q5Region)
	} else {
		rname.AppendString("EUROPE")
	}
	region.AddInt32("r_regionkey", []int32{0})
	region.AddString("r_name", rname)
	db.Add(region)

	nation := storage.NewRelation("nation")
	nation.AddInt32("n_nationkey", []int32{0, 1})
	nh := storage.NewStringHeap(2, 8)
	nh.AppendString("ALPHA")
	nh.AppendString("BETA")
	nation.AddString("n_name", nh)
	nation.AddInt32("n_regionkey", []int32{0, 0})
	db.Add(nation)

	supp := storage.NewRelation("supplier")
	sk := make([]int32, max(1, n/10))
	snat := make([]int32, len(sk))
	for i := range sk {
		sk[i] = int32(i + 1)
		snat[i] = int32(i % 2)
	}
	supp.AddInt32("s_suppkey", sk)
	supp.AddInt32("s_nationkey", snat)
	db.Add(supp)

	cust := storage.NewRelation("customer")
	ck := make([]int32, n)
	cnat := make([]int32, n)
	segs := storage.NewStringHeap(n, 10)
	for i := 0; i < n; i++ {
		ck[i] = int32(i + 1)
		cnat[i] = int32(i % 2)
		segs.AppendString(seg)
	}
	cust.AddInt32("c_custkey", ck)
	cust.AddInt32("c_nationkey", cnat)
	cust.AddString("c_mktsegment", segs)
	db.Add(cust)

	ord := storage.NewRelation("orders")
	ok := make([]int32, n)
	ocust := make([]int32, n)
	odate := make([]types.Date, n)
	oprio := make([]int32, n)
	ototal := make([]types.Numeric, n)
	date := queries.Q3Date - 10 // qualifies for Q3/Q5 windows
	if !qualify {
		date = queries.Q3Date + 1000
	}
	for i := 0; i < n; i++ {
		ok[i] = int32(i + 1)
		ocust[i] = int32(i%n + 1)
		odate[i] = date
		oprio[i] = int32(i)
		ototal[i] = types.Numeric(int64(i+1) * 100)
	}
	ord.AddInt32("o_orderkey", ok)
	ord.AddInt32("o_custkey", ocust)
	ord.AddDate("o_orderdate", odate)
	ord.AddInt32("o_shippriority", oprio)
	ord.AddNumeric("o_totalprice", ototal)
	db.Add(ord)

	li := storage.NewRelation("lineitem")
	lok := make([]int32, n)
	lsk := make([]int32, n)
	lship := make([]types.Date, n)
	lqty := make([]types.Numeric, n)
	lext := make([]types.Numeric, n)
	ldisc := make([]types.Numeric, n)
	ship := queries.Q6DateLo + 5
	qty := types.Numeric(10 * types.NumericScale) // < Q6's 24, < 300 HAVING
	if !qualify {
		ship = queries.Q6DateLo - 1000 // outside every date window
	}
	for i := 0; i < n; i++ {
		lok[i] = int32(i + 1)
		lsk[i] = sk[i%len(sk)]
		lship[i] = ship
		lqty[i] = qty
		lext[i] = types.Numeric(int64(i+1) * 100)
		ldisc[i] = queries.Q6DiscLo
	}
	li.AddInt32("l_orderkey", lok)
	li.AddInt32("l_suppkey", lsk)
	li.AddDate("l_shipdate", lship)
	li.AddNumeric("l_quantity", lqty)
	li.AddNumeric("l_extendedprice", lext)
	li.AddNumeric("l_discount", ldisc)
	db.Add(li)
	return db
}

// miniSSB builds a schema-compatible SSB instance for Q2.1.
func miniSSB(n int, qualify bool) *storage.Database {
	db := storage.NewDatabase("ssb", 0)

	cat := int32(99)
	if qualify {
		cat = queries.SSBQ21Categ
	}
	part := storage.NewRelation("part")
	pk := make([]int32, max(1, n/10))
	pcat := make([]int32, len(pk))
	pbrand := make([]int32, len(pk))
	for i := range pk {
		pk[i] = int32(i + 1)
		pcat[i] = cat
		pbrand[i] = int32(i%4 + 1)
	}
	part.AddInt32("p_partkey", pk)
	part.AddInt32("p_category", pcat)
	part.AddInt32("p_brand1", pbrand)
	db.Add(part)

	supp := storage.NewRelation("supplier")
	sk := []int32{1, 2}
	supp.AddInt32("s_suppkey", sk)
	supp.AddInt32("s_region", []int32{queries.SSBQ21Region, queries.SSBQ21Region})
	db.Add(supp)

	date := storage.NewRelation("date")
	dk := []types.Date{types.MakeDate(1993, 1, 1), types.MakeDate(1994, 1, 1)}
	date.AddDate("d_datekey", dk)
	date.AddInt32("d_year", []int32{1993, 1994})
	db.Add(date)

	lo := storage.NewRelation("lineorder")
	lopk := make([]int32, n)
	losk := make([]int32, n)
	lod := make([]types.Date, n)
	rev := make([]types.Numeric, n)
	for i := 0; i < n; i++ {
		lopk[i] = pk[i%len(pk)]
		losk[i] = sk[i%len(sk)]
		lod[i] = dk[i%len(dk)]
		rev[i] = types.Numeric(int64(i+1) * 10)
	}
	lo.AddInt32("lo_partkey", lopk)
	lo.AddInt32("lo_suppkey", losk)
	lo.AddDate("lo_orderdate", lod)
	lo.AddNumeric("lo_revenue", rev)
	db.Add(lo)
	return db
}

// emptyTPCH/emptySSB: zero-row base relations — every scan yields no
// morsel at all.
func emptyMinis() (*storage.Database, *storage.Database) {
	tp := miniTPCH(1, true)
	sb := miniSSB(1, true)
	et := storage.NewDatabase("tpch", 0)
	es := storage.NewDatabase("ssb", 0)
	for _, name := range []string{"region", "nation", "supplier", "customer", "orders", "lineitem"} {
		et.Add(truncated(tp.Rel(name)))
	}
	for _, name := range []string{"part", "supplier", "date", "lineorder"} {
		es.Add(truncated(sb.Rel(name)))
	}
	return et, es
}

// truncated clones a relation's schema with zero rows.
func truncated(r *storage.Relation) *storage.Relation {
	out := storage.NewRelation(r.Name)
	for _, c := range r.Columns() {
		switch c.Type {
		case storage.Int32:
			out.AddInt32(c.Name, nil)
		case storage.Int64:
			out.AddInt64(c.Name, nil)
		case storage.Numeric:
			out.AddNumeric(c.Name, nil)
		case storage.Date:
			out.AddDate(c.Name, nil)
		case storage.Byte:
			out.AddByte(c.Name, nil)
		case storage.String:
			out.AddString(c.Name, storage.NewStringHeap(0, 0))
		}
	}
	return out
}

// checkAll runs every registered plan query on the synthetic databases
// and compares against the oracles, across worker counts that exceed
// the morsel count and vector sizes from degenerate to default.
func checkAll(t *testing.T, label string, tp, sb *storage.Database) {
	t.Helper()
	for _, workers := range []int{1, 4} {
		for _, vec := range []int{1, 1000} {
			if got, want := Q6(tp, workers, vec), queries.RefQ6(tp); got != want {
				t.Errorf("%s w=%d vec=%d Q6 = %d, want %d", label, workers, vec, got, want)
			}
			checkRows(t, label, "Q3", workers, vec, Q3(tp, workers, vec), queries.RefQ3(tp))
			checkRows(t, label, "Q18", workers, vec, Q18(tp, workers, vec), queries.RefQ18(tp))
			checkRows(t, label, "Q5", workers, vec, Q5(tp, workers, vec), queries.RefQ5(tp))
			checkRows(t, label, "Q2.1", workers, vec, SSBQ21(sb, workers, vec), queries.RefSSBQ21(sb))
		}
	}
}

// checkRows compares slice results, treating empty and nil as equal
// (the interesting property here is "no rows", not nil-ness).
func checkRows[T any](t *testing.T, label, q string, workers, vec int, got, want []T) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s w=%d vec=%d %s mismatch:\n got %v\nwant %v", label, workers, vec, q, got, want)
	}
}

func TestPlanEmptyRelations(t *testing.T) {
	tp, sb := emptyMinis()
	checkAll(t, "empty", tp, sb)
}

func TestPlanAllFalseSelections(t *testing.T) {
	// Rows exist but no predicate passes: every FilterChain narrows to
	// zero, every downstream GroupBy merges zero groups, Q18's HAVING
	// table stays empty.
	checkAll(t, "all-false", miniTPCH(10, false), miniSSB(10, false))
}

func TestPlanTinyQualifyingSets(t *testing.T) {
	// A handful of qualifying rows with more workers than morsels:
	// some workers see empty batches while others aggregate real groups.
	checkAll(t, "tiny", miniTPCH(7, true), miniSSB(7, true))
}
