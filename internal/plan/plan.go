// Package plan is the composable physical-operator layer of the
// Tectorwise engine: queries are assembled from reusable vector-at-a-time
// operators instead of hand-rolled per-query pipeline monoliths.
//
// The layer realizes the paper's description of a vectorized engine as an
// *interpreter over type-specialized primitives* (§2.1): every operator
// is control logic only — Scan serves morsel-sized windows as vectors,
// FilterChain runs a selection cascade (§5.1), HashProbe runs the
// find-candidates / compare-keys / advance loop of Figure 2b, Project
// computes derived vectors, and the sinks (HashBuildSink, GroupBySink,
// SumSink, ProbeEmitSink) terminate pipelines — while all data-touching
// work happens in internal/tw's primitives. Operators exchange a Batch
// (window + selection vector) and communicate derived vectors through
// per-worker buffers allocated once at plan-build time, so execution is
// allocation free on the hot path.
//
// Parallelism and cancellation are handled once, here, rather than per
// query: Exec owns the morsel dispatchers (bound to the query's context,
// §6.1 morsel-driven scheduling) and the worker barrier, and drives each
// worker's stage list with the shared build-barrier protocol between
// pipeline breakers. A query function therefore only declares shared
// state (hash tables, spill partitions), assembles per-worker operator
// trees, and merges per-worker results.
package plan

import (
	"context"
	"runtime"
	"time"

	"paradigms/internal/exec"
	"paradigms/internal/storage"
	"paradigms/internal/tw"
	"paradigms/internal/vector"
)

// Exec is the per-query plan executor: it owns the query's context (one
// cancellation point for every dispatcher it creates), the normalized
// worker count and vector size, and the barrier the stages synchronize
// on.
type Exec struct {
	ctx context.Context
	bar *exec.Barrier

	// Workers is the normalized worker count; Vec the vector size.
	Workers int
	Vec     int
}

// NewExec creates a plan executor for callers outside this package — the
// SQL lowering pass (internal/logical) assembles ad-hoc operator trees
// with exactly the machinery the hand-written plans use.
func NewExec(ctx context.Context, nWorkers, vecSize int) *Exec {
	return newExec(ctx, nWorkers, vecSize)
}

// newExec normalizes the execution knobs and creates the executor.
func newExec(ctx context.Context, nWorkers, vecSize int) *Exec {
	w := nWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	v := vecSize
	if v <= 0 {
		v = vector.DefaultSize
	}
	return &Exec{ctx: ctx, bar: exec.NewBarrier(w), Workers: w, Vec: v}
}

// ScanDisp creates the shared morsel dispatcher of a relation scan,
// bound to the query's context.
func (e *Exec) ScanDisp(rel *storage.Relation) *exec.Dispatcher {
	return exec.NewDispatcherCtx(e.ctx, rel.Rows(), 0)
}

// PartDisp creates a dispatcher handing out aggregation spill partitions
// one at a time.
func (e *Exec) PartDisp(parts int) *exec.Dispatcher {
	return exec.NewDispatcherCtx(e.ctx, parts, 1)
}

// NewScan creates a worker's scan operator over a shared dispatcher.
func (e *Exec) NewScan(disp *exec.Dispatcher) *Scan {
	return &Scan{scan: tw.NewScan(disp, e.Vec)}
}

// Wait crosses the plan barrier; the last worker to arrive runs action.
// Stages use it for synchronization the sinks don't already provide
// (e.g. Q18's single-threaded HAVING-table build between pipelines).
func (e *Exec) Wait(action func()) { e.bar.Wait(action) }

// Stage is one pipeline of a worker's plan: either a vector pipeline
// (Root pulled until exhaustion, batches pushed into Sink, then
// Sink.Finish for flush + synchronization) or a raw Run step (partition
// merges, barrier actions).
type Stage struct {
	Root Operator
	Sink Sink
	Run  func(wid int)

	// Obs, when non-nil, receives the worker's wall time after the
	// stage completes (telemetry-instrumented executions only). The
	// uninstrumented path pays one nil check per stage per worker —
	// never per batch.
	Obs func(wid int, nanos int64)
}

// Run executes the plan: build is called once per worker with the
// worker's id and private buffer arena and returns the worker's stages,
// which are then driven in order. Cancellation needs no per-query code:
// every dispatcher made by this executor observes ctx, so canceled scans
// report exhaustion and all workers still reach every barrier.
func (e *Exec) Run(build func(wid int, bufs *vector.Buffers) []Stage) {
	exec.Parallel(e.Workers, func(wid int) {
		bufs := vector.NewBuffers(e.Vec)
		for _, st := range build(wid, bufs) {
			var start time.Time
			if st.Obs != nil {
				start = time.Now()
			}
			switch {
			case st.Root != nil:
				var b Batch
				for st.Root.Next(&b) {
					st.Sink.Consume(&b)
				}
				st.Sink.Finish(e.bar, wid)
			case st.Run != nil:
				st.Run(wid)
			}
			if st.Obs != nil {
				st.Obs(wid, time.Since(start).Nanoseconds())
			}
		}
	})
}
