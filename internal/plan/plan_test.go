package plan

import (
	"context"
	"reflect"
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/ssb"
	"paradigms/internal/tpch"
)

func TestPlanQueriesMatchReference(t *testing.T) {
	for _, sf := range []float64{0.01, 0.05} {
		db := tpch.Generate(sf, 0)
		ssbDB := ssb.Generate(sf, 0)
		for _, threads := range []int{1, 4} {
			for _, vec := range []int{1, 7, 1000} {
				if got, want := Q6(db, threads, vec), queries.RefQ6(db); got != want {
					t.Errorf("sf=%v t=%d vec=%d Q6 = %d, want %d", sf, threads, vec, got, want)
				}
				if got, want := Q3(db, threads, vec), queries.RefQ3(db); !reflect.DeepEqual(got, want) {
					t.Errorf("sf=%v t=%d vec=%d Q3 mismatch:\n got %v\nwant %v", sf, threads, vec, got, want)
				}
				if got, want := Q18(db, threads, vec), queries.RefQ18(db); !reflect.DeepEqual(got, want) {
					t.Errorf("sf=%v t=%d vec=%d Q18 mismatch:\n got %v\nwant %v", sf, threads, vec, got, want)
				}
				if got, want := Q5(db, threads, vec), queries.RefQ5(db); !reflect.DeepEqual(got, want) {
					t.Errorf("sf=%v t=%d vec=%d Q5 mismatch:\n got %v\nwant %v", sf, threads, vec, got, want)
				}
				if got, want := SSBQ21(ssbDB, threads, vec), queries.RefSSBQ21(ssbDB); !reflect.DeepEqual(got, want) {
					t.Errorf("sf=%v t=%d vec=%d Q2.1 mismatch:\n got %v\nwant %v", sf, threads, vec, got, want)
				}
			}
		}
	}
}

// TestLargeVectorSizes keeps the Fig. 5 extremes covered for the ported
// queries: vector sizes above the morsel size and full materialization
// stress Scan windowing and the vec-sized probe buffers in ways the
// small-vector sweeps cannot.
func TestLargeVectorSizes(t *testing.T) {
	db := tpch.Generate(0.02, 0)
	wantQ6 := queries.RefQ6(db)
	wantQ3 := queries.RefQ3(db)
	for _, vec := range []int{65536, db.Rel("lineitem").Rows()} {
		if got := Q6(db, 2, vec); got != wantQ6 {
			t.Errorf("vec=%d Q6 = %d, want %d", vec, got, wantQ6)
		}
		if got := Q3(db, 2, vec); !reflect.DeepEqual(got, wantQ3) {
			t.Errorf("vec=%d Q3 mismatch", vec)
		}
	}
}

// TestPlanCancellation: a canceled context drains the plan executor's
// workers without deadlock and leaves a partial (discardable) result —
// the same contract the monoliths honored per query, now provided once
// by the executor.
func TestPlanCancellation(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Must return promptly; result is meaningless and discarded.
	_ = Q3Ctx(ctx, db, 4, 0)
	_ = Q18Ctx(ctx, db, 4, 0)
	_ = Q5Ctx(ctx, db, 4, 0)
}
