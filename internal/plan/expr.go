package plan

import (
	"math"

	"paradigms/internal/simd"
	"paradigms/internal/storage"
	"paradigms/internal/tw"
)

// Vector expressions: closures built once per worker at plan-build time
// that evaluate a derived vector for a batch using tw primitives. An
// expression either fills the caller-provided scratch buffer or returns
// an already-materialized buffer it captured (zero copies either way).

// VecU64 evaluates a uint64 vector (keys, packed payloads) of length K.
type VecU64 func(b *Batch, scratch []uint64) []uint64

// VecI64 evaluates an int64 vector (aggregate inputs) of length K.
type VecI64 func(b *Batch, scratch []int64) []int64

// ordered mirrors the tw primitives' type constraint.
type ordered interface {
	~int8 | ~int32 | ~int64 | ~uint32 | ~uint64
}

// KeyWiden widens a 32-bit base column to 64-bit keys through the
// batch's selection.
func KeyWiden[T ~int32 | ~uint32](col []T) VecU64 {
	return func(b *Batch, scratch []uint64) []uint64 {
		w := window(col, b)
		if b.Sel == nil {
			tw.MapWiden(w, b.K, scratch)
		} else {
			tw.MapWidenSel(w, b.Sel[:b.K], scratch)
		}
		return scratch
	}
}

// KeyPack2x32 packs two 32-bit base columns into keys (lo | hi<<32).
func KeyPack2x32[T ~int32, U ~int32](lo []T, hi []U) VecU64 {
	return func(b *Batch, scratch []uint64) []uint64 {
		lw, hw := window(lo, b), window(hi, b)
		if b.Sel == nil {
			tw.MapPack2x32(lw, hw, b.K, scratch)
		} else {
			tw.MapPack2x32Sel(lw, hw, b.Sel[:b.K], scratch)
		}
		return scratch
	}
}

// FromU64 serves an already-computed derived vector (e.g. a probe
// gather) as an expression.
func FromU64(v []uint64) VecU64 {
	return func(b *Batch, _ []uint64) []uint64 { return v }
}

// FromI64 is FromU64 for int64 vectors.
func FromI64(v []int64) VecI64 {
	return func(b *Batch, _ []int64) []int64 { return v }
}

// U64FromI64 re-types a derived int64 vector as uint64 words (hash-table
// payload scatter of a gathered aggregate, e.g. Q18's sum(qty)).
func U64FromI64(v []int64) VecU64 {
	return func(b *Batch, scratch []uint64) []uint64 {
		tw.MapU64FromI64(v, b.K, scratch)
		return scratch
	}
}

// ColI64 materializes an int64-width base column through the selection.
func ColI64[T ~int64](col []T) VecI64 {
	return func(b *Batch, scratch []int64) []int64 {
		w := window(col, b)
		if b.Sel == nil {
			tw.MapCopyI64(w, b.K, scratch)
		} else {
			tw.FetchI64(w, b.Sel[:b.K], scratch)
		}
		return scratch
	}
}

// ColU64FromI64 materializes an int64-width base column as uint64 words.
func ColU64FromI64[T ~int64](col []T) VecU64 {
	return func(b *Batch, scratch []uint64) []uint64 {
		w := window(col, b)
		if b.Sel == nil {
			tw.MapU64FromI64(w, b.K, scratch)
		} else {
			tw.MapU64FromI64Sel(w, b.Sel[:b.K], scratch)
		}
		return scratch
	}
}

// MulCols computes a[i]*b[i] over two base columns through the selection
// (Q6's and Q1.1's revenue expression).
func MulCols[T ~int64, U ~int64](a []T, b []U) VecI64 {
	return func(bt *Batch, scratch []int64) []int64 {
		aw, bw := window(a, bt), window(b, bt)
		if bt.Sel == nil {
			tw.MapMulCols(aw, bw, bt.K, scratch)
		} else {
			tw.MapMulColsSel(aw, bw, bt.Sel[:bt.K], scratch)
		}
		return scratch
	}
}

// PackU64LoHi packs two derived uint64 vectors into group keys
// (uint32(lo) | hi<<32).
func PackU64LoHi(lo, hi []uint64) VecU64 {
	return func(b *Batch, scratch []uint64) []uint64 {
		tw.MapPackU64LoHi(lo, hi, b.K, scratch)
		return scratch
	}
}

// ---------------------------------------------------------------------
// Predicate constructors (FilterChain conjuncts)
// ---------------------------------------------------------------------

// cmpPred assembles a Pred from a dense and a Sel-consuming selection
// primitive over one base column.
func cmpPred[T ordered](col []T, v T,
	dense func([]T, T, []int32) int,
	sparse func([]T, T, []int32, []int32) int) Pred {
	return Pred{
		Dense:  func(base, n int, res []int32) int { return dense(col[base:base+n], v, res) },
		Sparse: func(base, n int, sel, res []int32) int { return sparse(col[base:base+n], v, sel, res) },
	}
}

// PredGE keeps positions where col >= v.
func PredGE[T ordered](col []T, v T) Pred {
	return cmpPred(col, v, tw.SelGE[T], tw.SelGESel[T])
}

// PredGT keeps positions where col > v.
func PredGT[T ordered](col []T, v T) Pred {
	return cmpPred(col, v, tw.SelGT[T], tw.SelGTSel[T])
}

// PredLE keeps positions where col <= v.
func PredLE[T ordered](col []T, v T) Pred {
	return cmpPred(col, v, tw.SelLE[T], tw.SelLESel[T])
}

// PredLT keeps positions where col < v.
func PredLT[T ordered](col []T, v T) Pred {
	return cmpPred(col, v, tw.SelLT[T], tw.SelLTSel[T])
}

// The 32-bit predicate constructors below route through internal/simd's
// SWAR and unrolled kernels instead of the branchy tw primitives: dense
// conjuncts compare two lanes per word branch-free, sparse conjuncts
// unroll the gathers 4-way. GT and LE reduce to GE and LT by bound
// adjustment, with the int32 extremes degenerating to keep-none /
// keep-all.

// PredLT32 is PredLT over a 32-bit column via the SWAR kernels.
func PredLT32[T ~int32](col []T, v T) Pred {
	return Pred{
		Dense: func(base, n int, res []int32) int {
			return simd.SelectLT(col[base:base+n], v, res)
		},
		Sparse: func(base, n int, sel, res []int32) int {
			return simd.SelectSparseLT(col[base:base+n], v, sel, res)
		},
	}
}

// PredGE32 is PredGE over a 32-bit column via the SWAR kernels.
func PredGE32[T ~int32](col []T, v T) Pred {
	return Pred{
		Dense: func(base, n int, res []int32) int {
			return simd.SelectGE(col[base:base+n], v, res)
		},
		Sparse: func(base, n int, sel, res []int32) int {
			return simd.SelectSparseGE(col[base:base+n], v, sel, res)
		},
	}
}

// PredGT32 keeps col > v: col >= v+1, or nothing when v is the maximum.
func PredGT32[T ~int32](col []T, v T) Pred {
	if int32(v) == math.MaxInt32 {
		return predNone()
	}
	return PredGE32(col, v+1)
}

// PredLE32 keeps col <= v: col < v+1, or everything when v is the
// maximum.
func PredLE32[T ~int32](col []T, v T) Pred {
	if int32(v) == math.MaxInt32 {
		return predAll()
	}
	return PredLT32(col, v+1)
}

// predNone never matches.
func predNone() Pred {
	return Pred{
		Dense:  func(base, n int, res []int32) int { return 0 },
		Sparse: func(base, n int, sel, res []int32) int { return 0 },
	}
}

// predAll matches every position.
func predAll() Pred {
	return Pred{
		Dense: func(base, n int, res []int32) int {
			for i := 0; i < n; i++ {
				res[i] = int32(i)
			}
			return n
		},
		Sparse: func(base, n int, sel, res []int32) int {
			copy(res, sel)
			return len(sel)
		},
	}
}

// PredEq keeps positions where col == v.
func PredEq[T ordered](col []T, v T) Pred {
	return cmpPred(col, v, tw.SelEq[T], tw.SelEqSel[T])
}

// PredLUT keeps positions where lut[col] (tiny-dimension semi-join).
func PredLUT[T ~int32](col []T, lut []bool) Pred {
	return Pred{
		Dense: func(base, n int, res []int32) int {
			return tw.SelLUT(col[base:base+n], lut, res)
		},
		Sparse: func(base, n int, sel, res []int32) int {
			return tw.SelLUTSel(col[base:base+n], lut, sel, res)
		},
	}
}

// PredEqString keeps positions whose string equals v. Dense only: must
// be a FilterChain's first conjunct.
func PredEqString(heap *storage.StringHeap, v string) Pred {
	return Pred{
		Dense: func(base, n int, res []int32) int {
			return tw.SelEqString(heap, base, n, v, res)
		},
	}
}
