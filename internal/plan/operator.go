package plan

import (
	"paradigms/internal/hashtable"
	"paradigms/internal/tw"
	"paradigms/internal/vector"
)

// Batch is the unit of flow between operators: a window of base-column
// rows [Base, Base+N) plus the selection vector of live positions within
// it (§2.1). Sel == nil means the batch is dense (all N positions live);
// otherwise Sel[:K] lists the live window-relative positions — ascending
// out of a FilterChain, but in candidate-chain match order after a probe.
// Derived vectors (probe payloads, projected values) are not carried in
// the batch: they live in per-worker buffers captured by the operator
// closures, aligned with Sel (length K).
type Batch struct {
	Base int
	N    int
	Sel  vector.Sel
	K    int
}

// window slices a base column to the batch's window.
func window[T any](col []T, b *Batch) []T { return col[b.Base : b.Base+b.N] }

// Operator produces batches: Next fills b with the next non-empty vector
// and reports false at exhaustion. Operators never emit K == 0 batches —
// empty vectors are consumed internally, exactly like the monolithic
// pipelines' `continue`.
type Operator interface {
	Next(b *Batch) bool
}

// ---------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------

// Scan serves morsels claimed from a shared dispatcher as dense batches
// of at most the configured vector size. Created via Exec.NewScan.
type Scan struct {
	scan *tw.Scan
}

// Next implements Operator.
func (s *Scan) Next(b *Batch) bool {
	n := s.scan.Next()
	if n == 0 {
		return false
	}
	b.Base, b.N, b.Sel, b.K = s.scan.Base, n, nil, n
	return true
}

// SetVec changes the scan's tuples-per-vector size for subsequent
// batches (micro-adaptive vector sizing). The new size must not exceed
// the vector size the pipeline's buffers were allocated with.
func (s *Scan) SetVec(v int) { s.scan.SetVec(v) }

// ---------------------------------------------------------------------
// FilterChain
// ---------------------------------------------------------------------

// Pred is one conjunct of a FilterChain: Dense evaluates over the whole
// window, Sparse over an input selection vector. Both write qualifying
// positions to res and return the count. A Pred with nil Sparse (string
// predicates, which have no Sel-consuming primitive) must be the chain's
// first conjunct.
type Pred struct {
	Dense  func(base, n int, res []int32) int
	Sparse func(base, n int, sel, res []int32) int
}

// FilterChain is a selection cascade: the first predicate produces a
// selection vector, later ones consume and narrow it (§5.1), ping-pinging
// between two buffers.
type FilterChain struct {
	child Operator
	preds []Pred
	s1    []int32
	s2    []int32
}

// NewFilterChain builds a selection cascade over child.
func NewFilterChain(bufs *vector.Buffers, child Operator, preds ...Pred) *FilterChain {
	if len(preds) == 0 {
		panic("plan: FilterChain needs at least one predicate")
	}
	return &FilterChain{child: child, preds: preds, s1: bufs.Sel(), s2: bufs.Sel()}
}

// Next implements Operator.
func (f *FilterChain) Next(b *Batch) bool {
	for {
		if !f.child.Next(b) {
			return false
		}
		cur, k := b.Sel, b.K
		out, alt := f.s1, f.s2
		for _, p := range f.preds {
			if cur == nil {
				k = p.Dense(b.Base, b.N, out)
			} else {
				k = p.Sparse(b.Base, b.N, cur[:k], out)
			}
			cur = out
			out, alt = alt, out
			if k == 0 {
				break
			}
		}
		if k == 0 {
			continue
		}
		b.Sel, b.K = cur, k
		return true
	}
}

// ---------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------

// Project computes derived vectors for each batch (into buffers the
// closure captures) and passes the batch through unchanged. fn only sees
// non-empty batches.
type Project struct {
	child Operator
	fn    func(b *Batch)
}

// NewProject wraps child with a projection step.
func NewProject(child Operator, fn func(b *Batch)) *Project {
	return &Project{child: child, fn: fn}
}

// Next implements Operator.
func (p *Project) Next(b *Batch) bool {
	if !p.child.Next(b) {
		return false
	}
	p.fn(b)
	return true
}

// ---------------------------------------------------------------------
// HashProbe
// ---------------------------------------------------------------------

// GatherU64 copies payload word Word of each matching entry into Dst.
type GatherU64 struct {
	Word int
	Dst  []uint64
}

// GatherI64 is GatherU64 for int64-typed payload words.
type GatherI64 struct {
	Word int
	Dst  []int64
}

// Carry compacts a derived vector of the upstream alignment through the
// match positions so it stays aligned with the narrowed batch.
type Carry func(inner []int32)

// CarryU64 compacts v through the match positions. Probe matches arrive
// in candidate-chain rounds, not in ascending position order, so the
// gather goes through a scratch buffer rather than in place.
func CarryU64(bufs *vector.Buffers, v []uint64) Carry {
	scratch := bufs.Ref()
	return func(inner []int32) {
		tw.FetchU64(v, inner, scratch)
		copy(v[:len(inner)], scratch)
	}
}

// CarryI64 is CarryU64 for int64 vectors.
func CarryI64(bufs *vector.Buffers, v []int64) Carry {
	scratch := bufs.I64()
	return func(inner []int32) {
		tw.FetchI64(v, inner, scratch)
		copy(v[:len(inner)], scratch)
	}
}

// HashFn maps packed 64-bit keys to their hash vector. A nil HashFn
// means the engine default (tw.MapHashU64 over the engine-wide hash
// function); the hybrid executor overrides it so vectorized stages
// build and probe join tables with the compiled backend's hash.
type HashFn func(keys, res []uint64)

// ProbeSpec declares a hash-probe operator: the shared table, the probe
// key, payload gathers, and carried vectors. Build keys must be unique
// (N:1 joins) so a batch's matches fit the vector-sized buffers;
// multi-match probes terminate pipelines via ProbeEmitSink instead.
type ProbeSpec struct {
	HT        *hashtable.Table
	Key       VecU64
	Hash      HashFn // nil = engine default
	GatherU64 []GatherU64
	GatherI64 []GatherI64
	Carry     []Carry
}

// HashProbe is the vectorized join probe of Figure 2b: compute hashes,
// find candidate chains, compare keys, advance — all in tw primitives —
// then narrow the batch to the matches and gather requested payloads.
type HashProbe struct {
	child   Operator
	spec    ProbeSpec
	keyBuf  []uint64
	hashes  []uint64
	cand    []hashtable.Ref
	candPos []int32
	mRefs   []hashtable.Ref
	mPos    []int32
	outSel  []int32
}

// NewHashProbe builds a probe operator over child.
func NewHashProbe(bufs *vector.Buffers, child Operator, spec ProbeSpec) *HashProbe {
	return &HashProbe{
		child:   child,
		spec:    spec,
		keyBuf:  bufs.Ref(),
		hashes:  bufs.Ref(),
		cand:    make([]hashtable.Ref, bufs.Size()),
		candPos: bufs.Sel(),
		mRefs:   make([]hashtable.Ref, bufs.Size()),
		mPos:    bufs.Sel(),
		outSel:  bufs.Sel(),
	}
}

// Next implements Operator.
func (p *HashProbe) Next(b *Batch) bool {
	for {
		if !p.child.Next(b) {
			return false
		}
		keys := p.spec.Key(b, p.keyBuf)
		if p.spec.Hash != nil {
			p.spec.Hash(keys[:b.K], p.hashes)
		} else {
			tw.MapHashU64(keys[:b.K], p.hashes)
		}
		nm := tw.Probe(p.spec.HT, keys, p.hashes, b.K, p.cand, p.candPos, p.mRefs, p.mPos)
		if nm == 0 {
			continue
		}
		for _, g := range p.spec.GatherU64 {
			tw.GatherWord(p.spec.HT, p.mRefs, g.Word, nm, g.Dst)
		}
		for _, g := range p.spec.GatherI64 {
			tw.GatherWordI64(p.spec.HT, p.mRefs, g.Word, nm, g.Dst)
		}
		for _, c := range p.spec.Carry {
			c(p.mPos[:nm])
		}
		if b.Sel == nil {
			copy(p.outSel, p.mPos[:nm])
		} else {
			tw.ComposePos(b.Sel, p.mPos[:nm], p.outSel)
		}
		b.Sel, b.K = p.outSel, nm
		return true
	}
}

// ---------------------------------------------------------------------
// Match
// ---------------------------------------------------------------------

// Match narrows a batch by a predicate over *derived* vectors (join
// residuals like Q5's c_nation = s_nation): pred emits matching
// K-relative positions, carried vectors are compacted through them, and
// the batch selection is composed.
type Match struct {
	child  Operator
	pred   func(b *Batch, res []int32) int
	carry  []Carry
	posBuf []int32
	outSel []int32
}

// NewMatch builds a residual-match operator over child.
func NewMatch(bufs *vector.Buffers, child Operator, pred func(b *Batch, res []int32) int, carry ...Carry) *Match {
	return &Match{child: child, pred: pred, carry: carry, posBuf: bufs.Sel(), outSel: bufs.Sel()}
}

// Next implements Operator.
func (m *Match) Next(b *Batch) bool {
	for {
		if !m.child.Next(b) {
			return false
		}
		k := m.pred(b, m.posBuf)
		if k == 0 {
			continue
		}
		for _, c := range m.carry {
			c(m.posBuf[:k])
		}
		if b.Sel == nil {
			copy(m.outSel, m.posBuf[:k])
		} else {
			tw.ComposePos(b.Sel, m.posBuf[:k], m.outSel)
		}
		b.Sel, b.K = m.outSel, k
		return true
	}
}
