package plan

import (
	"context"

	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/tw"
	"paradigms/internal/vector"
)

// SSBQ21Ctx executes SSB Q2.1 (§4.4): lineorder probes three filtered
// dimension hash tables, densifying between joins, then groups revenue
// by (year, brand).
func SSBQ21Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.SSBQ21Result {
	e := newExec(ctx, nWorkers, vecSize)
	part := db.Rel("part")
	pk := part.Int32("p_partkey")
	cat := part.Int32("p_category")
	brand := part.Int32("p_brand1")
	supp := db.Rel("supplier")
	sk := supp.Int32("s_suppkey")
	sregion := supp.Int32("s_region")
	date := db.Rel("date")
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	lo := db.Rel("lineorder")
	lopk := lo.Int32("lo_partkey")
	losk := lo.Int32("lo_suppkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")

	htPart := hashtable.New(2, e.Workers)
	htSupp := hashtable.New(1, e.Workers)
	htDate := hashtable.New(2, e.Workers)
	dispPart := e.ScanDisp(part)
	dispSupp := e.ScanDisp(supp)
	dispDate := e.ScanDisp(date)
	dispFact := e.ScanDisp(lo)
	ops := []hashtable.AggOp{hashtable.OpSum}
	spill := hashtable.NewSpill(e.Workers, tw.AggPartitions, 2+len(ops))
	partDisp := e.PartDisp(tw.AggPartitions)
	results := make([]queries.SSBQ21Result, e.Workers)

	e.Run(func(wid int, bufs *vector.Buffers) []Stage {
		// Dimension pipelines: part σ(category), supplier σ(region), and
		// the unfiltered date dimension (datekey → year).
		buildPart := Stage{
			Root: NewFilterChain(bufs, e.NewScan(dispPart), PredEq(cat, queries.SSBQ21Categ)),
			Sink: NewHashBuild(bufs, htPart, wid, KeyWiden(pk), KeyWiden(brand)),
		}
		buildSupp := Stage{
			Root: NewFilterChain(bufs, e.NewScan(dispSupp), PredEq(sregion, queries.SSBQ21Region)),
			Sink: NewHashBuild(bufs, htSupp, wid, KeyWiden(sk)),
		}
		buildDate := Stage{
			Root: e.NewScan(dispDate),
			Sink: NewHashBuild(bufs, htDate, wid, KeyWiden(dk), KeyWiden(dy)),
		}

		// Fact pipeline: three probes (carrying the part's brand through
		// each densification) → Γ(year | brand<<32; Σ revenue).
		brandV := bufs.Ref()
		yearV := bufs.Ref()
		aggregate := Stage{
			Root: NewHashProbe(bufs,
				NewHashProbe(bufs,
					NewHashProbe(bufs, e.NewScan(dispFact),
						ProbeSpec{HT: htPart, Key: KeyWiden(lopk),
							GatherU64: []GatherU64{{Word: 1, Dst: brandV}}}),
					ProbeSpec{HT: htSupp, Key: KeyWiden(losk),
						Carry: []Carry{CarryU64(bufs, brandV)}}),
				ProbeSpec{HT: htDate, Key: KeyWiden(lod),
					GatherU64: []GatherU64{{Word: 1, Dst: yearV}},
					Carry:     []Carry{CarryU64(bufs, brandV)}}),
			Sink: NewGroupBy(bufs, spill, wid, ops, PackU64LoHi(yearV, brandV), ColI64(rev)),
		}

		merge := MergeStage(partDisp, spill, ops, func(wid int, row []uint64) {
			results[wid] = append(results[wid], queries.SSBQ21Row{
				Year:    int32(uint32(row[1])),
				Brand:   int32(uint32(row[1] >> 32)),
				Revenue: int64(row[2]),
			})
		})

		return []Stage{buildPart, buildSupp, buildDate, aggregate, merge}
	})

	var out queries.SSBQ21Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortSSBQ21(out)
	return out
}
