package paradigms

import (
	"reflect"
	"testing"
)

// TestEnginesAgreeEverywhere is the paper's core methodological invariant:
// both engines run the same physical plans on the same data structures, so
// their results must be identical — across scale factors, thread counts,
// and (for Tectorwise) vector sizes — and must match the independent
// reference implementation.
func TestEnginesAgreeEverywhere(t *testing.T) {
	for _, sf := range []float64{0.01, 0.1} {
		tpchDB := GenerateTPCH(sf, 0)
		ssbDB := GenerateSSB(sf, 0)
		for _, db := range []*DB{tpchDB, ssbDB} {
			for _, q := range Queries(db) {
				want, err := Reference(db, q)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 3, 8} {
					got, err := Run(db, Typer, q, Options{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("sf=%v %s/%s workers=%d: Typer result differs from reference",
							sf, db.Name, q, workers)
					}
					for _, vec := range []int{1000, 64} {
						got, err := Run(db, Tectorwise, q, Options{Workers: workers, VectorSize: vec})
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("sf=%v %s/%s workers=%d vec=%d: Tectorwise result differs",
								sf, db.Name, q, workers, vec)
						}
					}
				}
			}
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	db := GenerateTPCH(0.01, 0)
	if _, err := Run(db, Typer, "Q42", Options{}); err == nil {
		t.Error("expected error for unknown query")
	}
	if _, err := Run(db, Engine("volcano"), "Q1", Options{}); err == nil {
		t.Error("expected error for unknown engine")
	}
	if _, err := Reference(db, "Q42"); err == nil {
		t.Error("expected error for unknown reference query")
	}
}

func TestScannedTuples(t *testing.T) {
	db := GenerateTPCH(0.01, 0)
	li := int64(db.Rel("lineitem").Rows())
	if got := ScannedTuples(db, "Q1"); got != li {
		t.Errorf("Q1 scanned = %d, want %d", got, li)
	}
	q3 := li + int64(db.Rel("orders").Rows()) + int64(db.Rel("customer").Rows())
	if got := ScannedTuples(db, "Q3"); got != q3 {
		t.Errorf("Q3 scanned = %d, want %d", got, q3)
	}
}

func TestQueriesList(t *testing.T) {
	tpchDB := GenerateTPCH(0.01, 0)
	ssbDB := GenerateSSB(0.01, 0)
	if got := Queries(tpchDB); len(got) != 5 || got[0] != "Q1" {
		t.Errorf("TPC-H queries = %v", got)
	}
	if got := Queries(ssbDB); len(got) != 4 || got[0] != "Q1.1" {
		t.Errorf("SSB queries = %v", got)
	}
}
