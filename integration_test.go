package paradigms

import (
	"reflect"
	"strings"
	"testing"
)

// TestEnginesAgreeEverywhere is the paper's core methodological invariant:
// both engines run the same physical plans on the same data structures, so
// their results must be identical — across scale factors, thread counts,
// and (for Tectorwise) vector sizes — and must match the independent
// reference implementation.
func TestEnginesAgreeEverywhere(t *testing.T) {
	for _, sf := range []float64{0.01, 0.1} {
		tpchDB := GenerateTPCH(sf, 0)
		ssbDB := GenerateSSB(sf, 0)
		for _, db := range []*DB{tpchDB, ssbDB} {
			for _, q := range Queries(db) {
				want, err := Reference(db, q)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 3, 8} {
					got, err := Run(db, Typer, q, Options{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("sf=%v %s/%s workers=%d: Typer result differs from reference",
							sf, db.Name, q, workers)
					}
					for _, vec := range []int{1000, 64} {
						got, err := Run(db, Tectorwise, q, Options{Workers: workers, VectorSize: vec})
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("sf=%v %s/%s workers=%d vec=%d: Tectorwise result differs",
								sf, db.Name, q, workers, vec)
						}
					}
				}
			}
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	db := GenerateTPCH(0.01, 0)
	_, err := Run(db, Typer, "Q42", Options{})
	if err == nil {
		t.Fatal("expected error for unknown query")
	}
	// The error must name the engine and list what that engine actually
	// has registered for this dataset, not just blame the database.
	for _, want := range []string{"typer", "tpch", "Q1", "Q18", "Q5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-query error %q does not mention %q", err, want)
		}
	}
	if _, err := Run(db, Engine("volcano"), "Q1", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("expected unknown-engine error, got %v", err)
	}
	// The reference oracles' pseudo-engine is not runnable through the
	// engine API (single-threaded, uncancelable).
	if _, err := Run(db, Engine("reference"), "Q1", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("expected unknown-engine error for reference pseudo-engine, got %v", err)
	}
	if _, err := Reference(db, "Q42"); err == nil {
		t.Error("expected error for unknown reference query")
	}
}

func TestScannedTuples(t *testing.T) {
	db := GenerateTPCH(0.01, 0)
	li := int64(db.Rel("lineitem").Rows())
	if got := ScannedTuples(db, "Q1"); got != li {
		t.Errorf("Q1 scanned = %d, want %d", got, li)
	}
	q3 := li + int64(db.Rel("orders").Rows()) + int64(db.Rel("customer").Rows())
	if got := ScannedTuples(db, "Q3"); got != q3 {
		t.Errorf("Q3 scanned = %d, want %d", got, q3)
	}
}

func TestQueriesList(t *testing.T) {
	tpchDB := GenerateTPCH(0.01, 0)
	ssbDB := GenerateSSB(0.01, 0)
	// Paper order first, extension queries (Q5) after.
	if got := Queries(tpchDB); len(got) != 6 || got[0] != "Q1" || got[5] != "Q5" {
		t.Errorf("TPC-H queries = %v", got)
	}
	if got := Queries(ssbDB); len(got) != 4 || got[0] != "Q1.1" {
		t.Errorf("SSB queries = %v", got)
	}
}
