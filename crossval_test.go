package paradigms

import (
	"reflect"
	"testing"
)

// TestRegistryCrossValidation is the regression net for the operator-
// layer port and the registry rewiring: every query registered for both
// engines — including the plan-based Tectorwise queries and Q5 — must
// produce results identical to the reference oracle across vector sizes
// (1 = degenerate tuple-at-a-time, 7 = odd non-divisor, 1000 = default,
// 4096 = several morsel fractions) and worker counts. Typer ignores the
// vector size, so it runs once per worker count.
func TestRegistryCrossValidation(t *testing.T) {
	tpchDB := GenerateTPCH(0.02, 0)
	ssbDB := GenerateSSB(0.02, 0)
	for _, db := range []*DB{tpchDB, ssbDB} {
		for _, q := range Queries(db) {
			want, err := Reference(db, q)
			if err != nil {
				t.Fatalf("%s/%s: no reference oracle: %v", db.Name, q, err)
			}
			for _, workers := range []int{1, 4} {
				got, err := Run(db, Typer, q, Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s/%s typer w=%d: %v", db.Name, q, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s typer w=%d differs from reference", db.Name, q, workers)
				}
				for _, vec := range []int{1, 7, 1000, 4096} {
					got, err := Run(db, Tectorwise, q, Options{Workers: workers, VectorSize: vec})
					if err != nil {
						t.Fatalf("%s/%s tectorwise w=%d vec=%d: %v", db.Name, q, workers, vec, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s tectorwise w=%d vec=%d differs from reference",
							db.Name, q, workers, vec)
					}
				}
			}
		}
	}
}

// TestEnginesCoverSameCatalog: the registry must offer the identical
// query set on both engines for each dataset — a query present on one
// side only would silently break the paradigm comparison.
func TestEnginesCoverSameCatalog(t *testing.T) {
	tpchDB := GenerateTPCH(0.01, 0)
	ssbDB := GenerateSSB(0.01, 0)
	for _, db := range []*DB{tpchDB, ssbDB} {
		for _, q := range Queries(db) {
			for _, eng := range []Engine{Typer, Tectorwise} {
				if _, err := Run(db, eng, q, Options{Workers: 1}); err != nil {
					t.Errorf("%s/%s not runnable on %s: %v", db.Name, q, eng, err)
				}
			}
			if _, err := Reference(db, q); err != nil {
				t.Errorf("%s/%s has no reference oracle: %v", db.Name, q, err)
			}
		}
	}
}
