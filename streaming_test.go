package paradigms

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/proto"
	"paradigms/internal/proto/client"
	"paradigms/internal/sqlcheck"
)

// TestStreamingEquivalence is the streamed-vs-materialized regression
// net: every query of the sqlcheck corpus (plus the canonical benchmark
// texts), streamed over the network client, must yield exactly the rows
// the materialized Do path produces — on both engines. Multiset
// comparison via sqlcheck.Canon covers the unordered shapes, whose row
// order legitimately varies with merge interleaving; ORDER BY texts are
// additionally compared positionally, since streaming must not break
// their ordering guarantee (those shapes materialize server-side and
// stream in chunks).
func TestStreamingEquivalence(t *testing.T) {
	for _, ds := range []string{"tpch", "ssb"} {
		t.Run(ds, func(t *testing.T) { streamingEquivalence(t, ds) })
	}
}

func streamingEquivalence(t *testing.T, dataset string) {
	// One database per service: both benchmarks name a "part" table, so
	// table-based routing needs the datasets served separately (as the
	// differential suites do).
	var db *DB
	var tpchDB, ssbDB *DB
	if dataset == "tpch" {
		db = GenerateTPCH(0.02, 0)
		tpchDB = db
	} else {
		db = GenerateSSB(0.02, 0)
		ssbDB = db
	}
	svc := NewService(tpchDB, ssbDB, ServiceOptions{
		MaxConcurrent:  2,
		SkipValidation: true,
		StreamChunk:    64, // small chunks: many rows frames per stream
	})
	defer svc.Close()
	ts := httptest.NewServer(proto.NewServer(svc, nil).Handler())
	defer ts.Close()
	cl := client.New(ts.URL, "equiv")

	var corpus []string
	for _, name := range logical.SQLQueries(dataset) {
		text, _ := logical.SQLText(dataset, name)
		corpus = append(corpus, text)
	}
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		corpus = append(corpus, sqlcheck.Generate(rnd, db))
	}

	ctx := context.Background()
	for _, text := range corpus {
		for _, engine := range []string{"typer", "tectorwise"} {
			res, err := svc.Do(ctx, engine, text)
			if err != nil {
				t.Fatalf("%s materialized: %v\n%s", engine, err, text)
			}
			want := res.(*logical.Result)

			rows, err := cl.Query(ctx, engine, text)
			if err != nil {
				t.Fatalf("%s stream submit: %v\n%s", engine, err, text)
			}
			got, err := rows.All()
			if err != nil {
				t.Fatalf("%s stream: %v\n%s", engine, err, text)
			}

			if len(rows.Cols()) != len(want.Cols) {
				t.Fatalf("%s: streamed %d cols, materialized %d\n%s",
					engine, len(rows.Cols()), len(want.Cols), text)
			}
			for i, c := range rows.Cols() {
				if c.Name != want.Cols[i].Name || c.Type != want.Cols[i].Type.Kind.String() {
					t.Errorf("%s: col %d is %s %s streamed vs %s %s materialized\n%s",
						engine, i, c.Name, c.Type,
						want.Cols[i].Name, want.Cols[i].Type.Kind, text)
				}
			}
			if int64(len(got)) != rows.RowCount() {
				t.Errorf("%s: end frame counts %d rows, stream carried %d\n%s",
					engine, rows.RowCount(), len(got), text)
			}
			if !sqlcheck.SameRows(got, want.Rows) {
				t.Errorf("%s: streamed rows differ from materialized (%d vs %d rows)\n%s",
					engine, len(got), len(want.Rows), text)
				continue
			}
			if strings.Contains(text, "ORDER BY") && !equalRows(got, want.Rows) {
				t.Errorf("%s: ORDER BY stream reordered rows\n%s", engine, text)
			}
		}
	}
}

// equalRows compares two row sets positionally.
func equalRows(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
