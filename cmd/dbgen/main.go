// Command dbgen generates TPC-H or SSB data and optionally writes it to
// disk in the binary columnar format of internal/iosim (used by the
// out-of-memory experiment, Table 5).
//
// Usage:
//
//	dbgen -benchmark tpch -sf 1 -out /tmp/tpch-sf1
//	dbgen -benchmark ssb  -sf 1            # generate only, print stats
package main

import (
	"flag"
	"fmt"
	"os"

	"paradigms/internal/iosim"
	"paradigms/internal/ssb"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"
)

func main() {
	benchmark := flag.String("benchmark", "tpch", "tpch or ssb")
	sf := flag.Float64("sf", 1, "scale factor")
	out := flag.String("out", "", "output directory (omit to only print stats)")
	verify := flag.Bool("verify", false, "re-read written columns and verify")
	flag.Parse()

	var db *storage.Database
	switch *benchmark {
	case "tpch":
		db = tpch.Generate(*sf, 0)
	case "ssb":
		db = ssb.Generate(*sf, 0)
	default:
		fmt.Fprintf(os.Stderr, "dbgen: unknown benchmark %q\n", *benchmark)
		os.Exit(2)
	}

	var total int64
	for _, name := range db.Relations() {
		rel := db.Rel(name)
		total += rel.ByteSize()
		fmt.Printf("%-10s %12d rows %10.1f MB\n", name, rel.Rows(),
			float64(rel.ByteSize())/1e6)
	}
	fmt.Printf("%-10s %25.1f MB\n", "total", float64(total)/1e6)

	if *out == "" {
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
	if err := iosim.WriteDatabase(db, *out); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s to %s\n", *benchmark, *out)
	if *verify {
		for _, name := range db.Relations() {
			rel := db.Rel(name)
			for _, col := range rel.Columns() {
				if col.Type == storage.String {
					continue
				}
				if err := iosim.VerifyRoundTrip(*out, db, name, col.Name); err != nil {
					fmt.Fprintln(os.Stderr, "dbgen:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Println("verification OK")
	}
}
