package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
	"time"

	"paradigms/internal/registry"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/storage"
)

var update = flag.Bool("update", false, "rewrite the REPL session golden file")

// TestREPLSession drives the shell with a scripted stdin over small
// synthetic databases and pins the full transcript: \tables, \d, the
// \engine switch, explain on all three backends (including the
// hybrid's per-pipeline engine assignment), query execution on all
// three backends (hybrid executions report their assignment next to
// the timing), prepared statements (\prepare/\execute with `?` arguments,
// the \prepare listing with router arm counts, argument errors), one
// deterministic auto-routed execution, an error diagnostic, and an
// unknown meta command. The clock is frozen so timings render as [0s].
// (Only the first auto execution is scripted: router picks beyond the
// try-each-arm-once phase depend on real latencies.)
func TestREPLSession(t *testing.T) {
	script := strings.Join([]string{
		`\tables`,
		`\d orders`,
		`\d nosuch`,
		`\engine`,
		`select count(*) from orders;`,
		`select o_custkey, count(*) as n`,
		`from orders, customer`,
		`where o_custkey = c_custkey and c_custkey <= 3`,
		`group by o_custkey order by 1;`,
		`explain select sum(lo_revenue) from lineorder, date where lo_orderdate = d_datekey and d_year = 1993;`,
		`\engine typer`,
		`select count(*) from orders;`,
		`explain select sum(lo_revenue) from lineorder, date where lo_orderdate = d_datekey and d_year = 1993;`,
		`\engine hybrid`,
		`select count(*) from orders;`,
		`select o_custkey, count(*) as n`,
		`from orders, customer`,
		`where o_custkey = c_custkey and c_custkey <= 3`,
		`group by o_custkey order by 1;`,
		`explain select sum(lo_revenue) from lineorder, date where lo_orderdate = d_datekey and d_year = 1993;`,
		`\engine bogus`,
		`\engine tw`,
		`\prepare`,
		`\prepare rev`,
		`\prepare rev select sum(l_extendedprice) as total from lineitem where l_quantity < ?`,
		`\execute rev 30`,
		`\engine auto`,
		`\execute rev 10`,
		`\prepare`,
		`\execute nosuch 1`,
		`\execute rev`,
		`\execute rev abc`,
		`select count(*) from orders where o_custkey < ?;`,
		`select nope from orders;`,
		`select count(*) from nosuch;`,
		`\x`,
		`\q`,
	}, "\n") + "\n"

	var out bytes.Buffer
	fixed := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sh := &shell{
		dbs:     []*storage.Database{sqlcheck.MiniTPCH(20, true), sqlcheck.MiniSSB(10, true)},
		workers: 2,
		engine:  registry.Tectorwise,
		out:     &out,
		clock:   func() time.Time { return fixed },
	}
	sh.run(strings.NewReader(script))

	got := out.String()
	const golden = "testdata/session.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("REPL transcript changed\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestREPLEngineParity: the same statement through the REPL's two
// engines prints identical result tables (timings frozen).
func TestREPLEngineParity(t *testing.T) {
	const q = `select o_custkey, count(*) from orders group by o_custkey order by 1 limit 5;` + "\n\\q\n"
	runOn := func(engine string) string {
		var out bytes.Buffer
		fixed := time.Now()
		sh := &shell{
			dbs:     []*storage.Database{sqlcheck.MiniTPCH(20, true)},
			workers: 2,
			engine:  engine,
			out:     &out,
			clock:   func() time.Time { return fixed },
		}
		sh.run(strings.NewReader(q))
		return out.String()
	}
	tw, ty := runOn(registry.Tectorwise), runOn(registry.Typer)
	if tw != ty {
		t.Errorf("engines print different transcripts\ntectorwise:\n%s\ntyper:\n%s", tw, ty)
	}
}
