// Command sqlsh is an interactive SQL shell over the generated TPC-H
// and SSB databases: statements parse, bind, and optimize once, then
// lower onto the engine selected with \engine — the Tectorwise
// vectorized operator layer (default), the Typer-style compiled fused
// pipelines, hybrid, which runs each pipeline of the query on
// whichever paradigm its per-pipeline router prefers, or auto, which
// routes each execution to whichever backend the statement's adaptive
// router measures as faster — and run morsel-parallel. Every statement's optimized plan is held in an LRU
// plan cache keyed on the normalized SQL text, so re-running a
// statement skips parse, bind, and plan.
//
// Usage:
//
//	sqlsh -sf 0.1 -ssbsf 0.1 [-workers 0] [-vecsize 0] [-engine tectorwise]
//
// Statements end with ';'. Queries route to the database whose catalog
// holds their FROM tables (TPC-H first, then SSB). Meta commands:
//
//	\tables            list tables of both catalogs
//	\d <table>         describe a table
//	\engine [name]     show or switch the execution backend
//	                   (typer | tectorwise | hybrid | auto; tw is
//	                   shorthand)
//	\prepare           list the named prepared statements and their
//	                   per-engine routing state
//	\prepare <name> <sql>
//	                   prepare a statement (one line, `?` placeholders
//	                   allowed) under a name
//	\execute <name> [arg ...]
//	                   run a prepared statement with one argument per
//	                   placeholder (dates as YYYY-MM-DD)
//	\q                 quit
//	explain <query>    print the backend and plan instead of running:
//	                   the optimized logical plan, plus the compiled
//	                   pipeline decomposition under \engine typer and
//	                   the per-pipeline engine assignment under
//	                   \engine hybrid
//	explain analyze <query>
//	                   run the query instrumented and print, per
//	                   pipeline, the observed vs estimated cardinality,
//	                   selectivity, hash-table sizes, and wall time on
//	                   whichever backend \engine selects
//
// Example session:
//
//	sql> \prepare rev select sum(l_extendedprice * l_discount) as revenue
//	       from lineitem where l_shipdate >= ? and l_shipdate < ?
//	       and l_discount between ? and ? and l_quantity < ?
//	prepared rev (5 parameters)
//	sql> \execute rev 1994-01-01 1995-01-01 0.05 0.07 24
//	revenue
//	-----------
//	11803420.25
//	(1 row)  [12.3ms typer]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"paradigms"
	"paradigms/internal/compiled"
	"paradigms/internal/hybrid"
	"paradigms/internal/logical"
	"paradigms/internal/obs"
	"paradigms/internal/prepcache"
	"paradigms/internal/registry"
	"paradigms/internal/storage"
)

func main() {
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	ssbsf := flag.Float64("ssbsf", 0.05, "SSB scale factor")
	workers := flag.Int("workers", 0, "morsel workers per query (0 = GOMAXPROCS)")
	vecSize := flag.Int("vecsize", 0, "vector size (0 = default; vectorized engine only)")
	engine := flag.String("engine", registry.Tectorwise, "initial engine (typer | tectorwise | hybrid | auto)")
	flag.Parse()

	eng, ok := engineName(*engine)
	if !ok {
		fmt.Fprintf(os.Stderr, "sqlsh: unknown -engine %q\n", *engine)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generating TPC-H SF=%g and SSB SF=%g...\n", *sf, *ssbsf)
	sh := &shell{
		dbs:     []*storage.Database{paradigms.GenerateTPCH(*sf, 0), paradigms.GenerateSSB(*ssbsf, 0)},
		workers: *workers,
		vecSize: *vecSize,
		engine:  eng,
		out:     os.Stdout,
		clock:   time.Now,
	}
	fmt.Fprintln(os.Stderr, `ready — statements end with ';', \q quits, \tables lists tables, \engine switches backends`)
	sh.run(os.Stdin)
}

// engineName canonicalizes an engine spelling ("tw" is shorthand).
func engineName(s string) (string, bool) {
	switch strings.ToLower(s) {
	case registry.Typer:
		return registry.Typer, true
	case registry.Tectorwise, "tw":
		return registry.Tectorwise, true
	case registry.Hybrid:
		return registry.Hybrid, true
	case prepcache.Auto:
		return prepcache.Auto, true
	}
	return "", false
}

// shell is the REPL state; run drives it from any reader so the REPL is
// script-testable (see main_test.go). Every executed statement goes
// through the plan cache, and named prepared statements (\prepare)
// carry their own adaptive engine router.
type shell struct {
	dbs     []*storage.Database
	workers int
	vecSize int
	engine  string
	out     io.Writer
	clock   func() time.Time

	cache *prepcache.Cache
	stmts map[string]*prepcache.Statement
}

func (sh *shell) run(in io.Reader) {
	if sh.cache == nil {
		sh.cache = prepcache.New(0)
	}
	if sh.stmts == nil {
		sh.stmts = map[string]*prepcache.Statement{}
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sql> "
	for {
		fmt.Fprint(sh.out, prompt)
		if !sc.Scan() {
			fmt.Fprintln(sh.out)
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if sh.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "...> "
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		prompt = "sql> "
		if stmt == "" {
			continue
		}
		sh.statement(stmt)
	}
}

// meta handles backslash commands; reports true on quit.
func (sh *shell) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\q`, `\quit`:
		return true
	case `\tables`:
		for _, db := range sh.dbs {
			cat := logical.CatalogFor(db)
			fmt.Fprintf(sh.out, "%s:\n", db.Name)
			for _, t := range cat.Tables() {
				fmt.Fprintf(sh.out, "  %-12s %8d rows\n", t, cat.Table(t).Rows())
			}
		}
	case `\d`:
		if len(fields) < 2 {
			fmt.Fprintln(sh.out, `usage: \d <table>`)
			return false
		}
		for _, db := range sh.dbs {
			if t := logical.CatalogFor(db).Table(fields[1]); t != nil {
				fmt.Fprintf(sh.out, "%s.%s (%d rows", db.Name, t.Name, t.Rows())
				if t.Key != "" {
					fmt.Fprintf(sh.out, ", key %s", t.Key)
				}
				fmt.Fprintln(sh.out, ")")
				for _, c := range t.Columns() {
					kind := c.Type.Kind.String()
					if kind == "numeric" {
						kind = fmt.Sprintf("numeric(%d)", c.Type.Scale)
					}
					fmt.Fprintf(sh.out, "  %-20s %s\n", c.Name, kind)
				}
				return false
			}
		}
		fmt.Fprintf(sh.out, "unknown table %q\n", fields[1])
	case `\engine`:
		if len(fields) < 2 {
			fmt.Fprintf(sh.out, "engine: %s\n", sh.engine)
			return false
		}
		eng, ok := engineName(fields[1])
		if !ok {
			fmt.Fprintf(sh.out, "unknown engine %q (typer | tectorwise | hybrid | auto)\n", fields[1])
			return false
		}
		sh.engine = eng
		fmt.Fprintf(sh.out, "engine: %s\n", sh.engine)
	case `\prepare`:
		rest := strings.TrimSpace(cmd[len(`\prepare`):])
		if rest == "" {
			sh.listPrepared()
			return false
		}
		idx := strings.IndexAny(rest, " \t")
		if idx < 0 {
			fmt.Fprintln(sh.out, `usage: \prepare <name> <select ...>`)
			return false
		}
		name := rest[:idx]
		text := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest[idx:]), ";"))
		db, err := logical.RouteByTables(text, sh.dbs...)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return false
		}
		st, _, err := sh.cache.GetOrPrepare(logical.CatalogFor(db), text, func() (*logical.Plan, error) {
			return logical.Prepare(db, text)
		})
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return false
		}
		sh.stmts[name] = st
		fmt.Fprintf(sh.out, "prepared %s (%d parameter%s)\n", name, st.NumParams(), plural(st.NumParams()))
	case `\execute`:
		if len(fields) < 2 {
			fmt.Fprintln(sh.out, `usage: \execute <name> [arg ...]`)
			return false
		}
		st, ok := sh.stmts[fields[1]]
		if !ok {
			fmt.Fprintf(sh.out, "unknown prepared statement %q\n", fields[1])
			return false
		}
		vals, err := st.BindTexts(fields[2:])
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return false
		}
		sh.runStatement(st, vals)
	default:
		fmt.Fprintf(sh.out, "unknown command %s\n", fields[0])
	}
	return false
}

// statement routes one statement through the plan cache and executes
// it (or explains it). Re-running a statement — any spelling that
// normalizes equally — skips parse, bind, and plan. "explain <sql>"
// prints the plan without running; "explain analyze <sql>" runs the
// statement instrumented and prints the per-pipeline observed vs
// estimated cardinalities and timings.
func (sh *shell) statement(stmt string) {
	explain, analyze := false, false
	if f := strings.Fields(stmt); len(f) > 0 && strings.EqualFold(f[0], "explain") {
		explain = true
		stmt = strings.TrimSpace(stmt[len(f[0]):])
		if len(f) > 1 && strings.EqualFold(f[1], "analyze") {
			analyze = true
			stmt = strings.TrimSpace(stmt[len(f[1]):])
		}
	}
	db, err := logical.RouteByTables(stmt, sh.dbs...)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	if explain && !analyze {
		sh.explain(db, stmt)
		return
	}
	st, _, err := sh.cache.GetOrPrepare(logical.CatalogFor(db), stmt, func() (*logical.Plan, error) {
		return logical.Prepare(db, stmt)
	})
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	if n := st.NumParams(); n > 0 {
		fmt.Fprintf(sh.out, "statement has %d parameter%s; use \\prepare <name> <sql> and \\execute <name> <args>\n", n, plural(n))
		return
	}
	if analyze {
		sh.analyzeStatement(st, nil)
		return
	}
	sh.runStatement(st, nil)
}

// runStatement executes a cached statement with bound values on the
// shell's engine; "auto" resolves through the statement's router and
// the resolved backend is reported next to the timing, and hybrid
// executions report their per-pipeline assignment ("hybrid[t,v]").
func (sh *shell) runStatement(st *prepcache.Statement, vals []int64) {
	start := sh.clock()
	res, used, err := st.Execute(context.Background(), sh.engine, vals, sh.workers, sh.vecSize)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	fmt.Fprint(sh.out, strings.TrimSuffix(res.String(), "\n"))
	elapsed := sh.clock().Sub(start).Round(100 * time.Microsecond)
	switch {
	case sh.engine == prepcache.Auto:
		fmt.Fprintf(sh.out, "  [%s auto→%s]\n", elapsed, used)
	case used != sh.engine:
		fmt.Fprintf(sh.out, "  [%s %s]\n", elapsed, used)
	default:
		fmt.Fprintf(sh.out, "  [%s]\n", elapsed)
	}
}

// analyzeStatement is runStatement instrumented: the execution runs
// under a telemetry collector, and instead of the result rows the
// shell prints the optimized plan, the per-pipeline observed vs
// estimated cardinalities and timings, and a one-line summary. Works
// on every backend — hybrid rows additionally carry the per-pipeline
// engine assignment, and auto reports the backend the router resolved
// to.
func (sh *shell) analyzeStatement(st *prepcache.Statement, vals []int64) {
	col := obs.NewCollector()
	ctx := obs.WithCollector(context.Background(), col)
	start := sh.clock()
	res, used, err := st.Execute(ctx, sh.engine, vals, sh.workers, sh.vecSize)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	elapsed := sh.clock().Sub(start).Round(100 * time.Microsecond)
	fmt.Fprint(sh.out, st.Plan().Format())
	fmt.Fprint(sh.out, obs.FormatPipes(col.Pipes()))
	fmt.Fprintf(sh.out, "(%d row%s)  [%s %s]\n", len(res.Rows), plural(len(res.Rows)), elapsed, used)
}

// listPrepared prints the named prepared statements with their
// per-engine routing state.
func (sh *shell) listPrepared() {
	if len(sh.stmts) == 0 {
		fmt.Fprintln(sh.out, "no prepared statements")
		return
	}
	names := make([]string, 0, len(sh.stmts))
	for n := range sh.stmts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := sh.stmts[n]
		fmt.Fprintf(sh.out, "%-12s %d parameter%s", n, st.NumParams(), plural(st.NumParams()))
		for _, arm := range st.Router().Snapshot() {
			fmt.Fprintf(sh.out, "  %s=%d", arm.Engine, arm.N)
		}
		fmt.Fprintf(sh.out, "  %s\n", st.Text)
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// explain prints the selected backend, the optimized logical plan, and
// — for the compiled and hybrid engines — the fused pipeline
// decomposition (with the hybrid's per-pipeline engine assignment).
func (sh *shell) explain(db *storage.Database, stmt string) {
	pl, err := logical.Prepare(db, stmt)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	switch sh.engine {
	case registry.Typer:
		fmt.Fprintln(sh.out, "backend: typer (compiled fused pipelines)")
		fmt.Fprint(sh.out, pl.Format())
		shape, err := compiled.Explain(pl)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprint(sh.out, shape)
	case registry.Hybrid:
		fmt.Fprintln(sh.out, "backend: hybrid (per-pipeline engine routing)")
		fmt.Fprint(sh.out, pl.Format())
		shape, err := hybrid.Explain(pl)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprint(sh.out, shape)
	case prepcache.Auto:
		fmt.Fprintln(sh.out, "backend: auto (adaptive per-statement routing; vectorized plan shown)")
		fmt.Fprint(sh.out, pl.Format())
	default:
		fmt.Fprintln(sh.out, "backend: tectorwise (vectorized operator plan)")
		fmt.Fprint(sh.out, pl.Format())
	}
}
