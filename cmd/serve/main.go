// Command serve runs the query service behind its network front-end
// (internal/proto) and drives it with a closed-loop multi-tenant
// workload over localhost HTTP: every query goes through the wire —
// JSON request in, NDJSON-framed streaming result out — through
// per-tenant deficit-round-robin admission, exactly the path a remote
// client takes.
//
// Usage:
//
//	serve -sf 0.1 -clients 16 -duration 10s
//	serve -tenants heavy:12:heavy,light:4:light -maxconc 4
//	serve -fairbench                # DRR-vs-FIFO fairness experiment
//	serve -serveonly -listen 127.0.0.1:8080
//	serve -prepared -engine mixed
//
// -tenants is a comma-separated list of name:clients:workload specs;
// workload "heavy" runs the join-heavy Q3-class canonical SQL, "light"
// the Q6-class point scans, "mixed" all canonical benchmark texts.
//
// -fairbench runs the three-phase fairness experiment behind
// EXPERIMENTS.md: (1) the light tenant alone (its solo p99 baseline),
// (2) DRR with a heavy tenant flooding Q3-class scans next to it,
// (3) the same mix under legacy FIFO admission. Deficit round robin
// must keep the light tenant's contended p99 within a small multiple of
// solo; FIFO parks light queries behind the whole heavy backlog.
//
// -serveonly skips the driver and serves until SIGINT/SIGTERM —
// quickstart:
//
//	curl -s http://127.0.0.1:8080/v1/query -d '{"sql":"select count(*) as n from lineitem"}'
//	curl -s http://127.0.0.1:8080/statsz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"paradigms"
	"paradigms/internal/logical"
	"paradigms/internal/obs"
	"paradigms/internal/proto"
	"paradigms/internal/proto/client"
	"paradigms/internal/server"
)

// prepSpec is one parameterized template of the -prepared workload:
// the SQL text (with `?` placeholders) plus an argument sampler.
type prepSpec struct {
	text string
	args func(r *rand.Rand) []string
}

// preparedWorkload mixes the two regimes the paper separates:
// computation-heavy scans (Q6/Q1.1 shapes, where the compiled engine
// wins) and join/probe-heavy aggregations (Q3 shape, where the
// vectorized engine wins) — so adaptive auto-routing has something
// real to learn per statement.
func preparedWorkload() []prepSpec {
	date := func(y, m, d int) string { return fmt.Sprintf("%04d-%02d-%02d", y, m, d) }
	return []prepSpec{
		{
			text: `select sum(l_extendedprice * l_discount) as revenue from lineitem
				where l_shipdate >= ? and l_shipdate < ? and l_discount between ? and ? and l_quantity < ?`,
			args: func(r *rand.Rand) []string {
				y := 1993 + r.Intn(4)
				lo := 2 + r.Intn(6)
				return []string{date(y, 1, 1), date(y+1, 1, 1),
					fmt.Sprintf("0.0%d", lo), fmt.Sprintf("0.0%d", lo+2),
					fmt.Sprintf("%d", 20+r.Intn(15))}
			},
		},
		{
			text: `select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
				o_orderdate, o_shippriority
				from customer, orders, lineitem
				where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey
				and o_orderdate < ? and l_shipdate > ?
				group by l_orderkey, o_orderdate, o_shippriority
				order by revenue desc, o_orderdate, l_orderkey limit 10`,
			args: func(r *rand.Rand) []string {
				d := date(1995, 1+r.Intn(6), 1+r.Intn(28))
				return []string{d, d}
			},
		},
		{
			text: `select sum(lo_extendedprice * lo_discount) as revenue from lineorder, date
				where lo_orderdate = d_datekey and d_year = ? and lo_discount between ? and ? and lo_quantity < ?`,
			args: func(r *rand.Rand) []string {
				lo := 1 + r.Intn(3)
				return []string{fmt.Sprintf("%d", 1992+r.Intn(6)),
					fmt.Sprintf("%d", lo), fmt.Sprintf("%d", lo+2),
					fmt.Sprintf("%d", 20+r.Intn(15))}
			},
		},
	}
}

// tenantSpec is one tenant of the closed-loop driver.
type tenantSpec struct {
	name     string
	clients  int
	workload string // "heavy" | "light" | "mixed"
}

func parseTenants(s string) ([]tenantSpec, error) {
	var out []tenantSpec
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("bad tenant spec %q (want name:clients:heavy|light|mixed)", part)
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad client count in %q", part)
		}
		switch f[2] {
		case "heavy", "light", "mixed":
		default:
			return nil, fmt.Errorf("bad workload %q in %q", f[2], part)
		}
		out = append(out, tenantSpec{name: f[0], clients: n, workload: f[2]})
	}
	return out, nil
}

// workloadTexts returns the canonical SQL texts of one workload class.
// "heavy" is the join-heavy grouped-aggregate class (Q3/Q18 shapes);
// "light" the short selective scans (Q6/Q1.1 shapes); "mixed" every
// canonical benchmark text of both datasets.
func workloadTexts(class string) []string {
	pick := func(dataset string, names ...string) []string {
		var out []string
		for _, n := range names {
			if text, ok := logical.SQLText(dataset, n); ok {
				out = append(out, text)
			}
		}
		return out
	}
	switch class {
	case "heavy":
		return append(pick("tpch", "Q3", "Q18"), pick("ssb", "Q2.1")...)
	case "light":
		return append(pick("tpch", "Q6"), pick("ssb", "Q1.1")...)
	default:
		var out []string
		for _, ds := range []string{"tpch", "ssb"} {
			for _, n := range logical.SQLQueries(ds) {
				text, _ := logical.SQLText(ds, n)
				out = append(out, text)
			}
		}
		return out
	}
}

func main() {
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor")
	ssbsf := flag.Float64("ssbsf", 0.1, "SSB scale factor")
	listen := flag.String("listen", "127.0.0.1:0", "listen address of the HTTP front-end")
	serveOnly := flag.Bool("serveonly", false, "serve until SIGINT instead of running the driver")
	clients := flag.Int("clients", 16, "closed-loop client count (single-tenant mode)")
	duration := flag.Duration("duration", 10*time.Second, "run length (per phase in -fairbench)")
	engine := flag.String("engine", "mixed", "typer | tectorwise | mixed")
	tenants := flag.String("tenants", "", "name:clients:heavy|light|mixed specs (overrides -clients)")
	budget := flag.Int("budget", 0, "global worker budget (0 = GOMAXPROCS)")
	maxconc := flag.Int("maxconc", 0, "max concurrently executing queries (0 = default)")
	maxqueued := flag.Int("maxqueued", 0, "global admission queue bound (0 = unbounded)")
	maxqueuedTenant := flag.Int("maxqueuedpertenant", 0, "per-tenant queue bound (0 = unbounded)")
	maxperTenant := flag.Int("maxpertenant", 0, "per-tenant running cap (0 = unbounded)")
	fifo := flag.Bool("fifo", false, "legacy global FIFO admission instead of deficit round robin")
	morsel := flag.Int("morsel", 0, "scan morsel size override (0 = engine default; smaller = finer-grained yielding)")
	yieldPause := flag.Duration("yieldpause", 0, "per-morsel pause imposed on over-cost tenants (0 = default)")
	prepared := flag.Bool("prepared", false, "prepared-statement workload over the network (plan cache, adaptive auto-routing)")
	fairbench := flag.Bool("fairbench", false, "run the solo/DRR/FIFO fairness experiment")
	statsJSON := flag.Bool("statsjson", false, "also emit the final /statsz snapshot")
	qlog := flag.String("qlog", "", "append one NDJSON record per query to this file (structured query log)")
	qlogMax := flag.Int64("qlogmax", 0, "query log rotation bound in bytes (0 = 64 MiB)")
	prewarm := flag.String("prewarm", "", "mine this query log at startup and pre-prepare its heavy hitters with learned cardinality hints")
	shards := flag.Int("shards", 0, "hash-partition each database into N in-process shards and run distributable ad-hoc SQL through scatter/gather exchanges (0 = single-process)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the front-end")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating TPC-H SF=%g and SSB SF=%g...\n", *sf, *ssbsf)
	tpchDB := paradigms.GenerateTPCH(*sf, 0)
	ssbDB := paradigms.GenerateSSB(*ssbsf, 0)

	opts := paradigms.ServiceOptions{
		WorkerBudget:       *budget,
		MaxConcurrent:      *maxconc,
		MaxQueued:          *maxqueued,
		MaxQueuedPerTenant: *maxqueuedTenant,
		MaxPerTenant:       *maxperTenant,
		FIFO:               *fifo,
		MorselSize:         *morsel,
		YieldPause:         *yieldPause,
		SkipValidation:     true, // streamed results are covered by the equivalence suite
		Metrics:            obs.NewMetrics(),
		Prewarm:            *prewarm,
		Shards:             *shards,
	}
	if *shards > 1 {
		fmt.Fprintf(os.Stderr, "sharding ad-hoc SQL across %d in-process shards...\n", *shards)
	}
	if *prewarm != "" {
		fmt.Fprintf(os.Stderr, "prewarming plan cache from %s...\n", *prewarm)
	}
	if *qlog != "" {
		ql, err := obs.OpenQueryLog(*qlog, *qlogMax)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		defer ql.Close()
		opts.QueryLog = ql
	}

	if *fairbench {
		runFairbench(tpchDB, ssbDB, opts, *duration, *statsJSON)
		return
	}

	svc := paradigms.NewService(tpchDB, ssbDB, opts)
	base, shutdown, err := serve(svc, *listen, opts.Metrics, *pprofFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serving on %s\n", base)

	if *serveOnly {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		<-ch
		shutdown()
		svc.Close()
		fmt.Print(svc.Stats())
		return
	}

	specs := []tenantSpec{{name: "default", clients: *clients, workload: "mixed"}}
	if *tenants != "" {
		specs, err = parseTenants(*tenants)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(2)
		}
	}

	st := drive(base, specs, *engine, *prepared, *duration)
	shutdown()
	svc.Close()
	fmt.Print(svc.Stats())
	if *statsJSON {
		fmt.Printf("%s\n", st)
	}
}

// serve starts the HTTP front-end, returning its base URL and a
// shutdown func. A non-nil metrics registry backs /metricsz;
// withPprof mounts net/http/pprof under /debug/pprof/.
func serve(svc *server.Service, addr string, metrics *obs.Metrics, withPprof bool) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	handler := proto.NewServer(svc, nil).WithMetrics(metrics).Handler()
	if withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// drive runs the closed-loop client fleet against base for d and
// returns the final /statsz snapshot.
func drive(base string, specs []tenantSpec, engine string, prepared bool, d time.Duration) []byte {
	var engines []string
	switch engine {
	case "typer", "tectorwise":
		engines = []string{engine}
	case "mixed":
		engines = []string{"typer", "tectorwise"}
		if prepared {
			engines = append(engines, "auto")
		}
	case "auto":
		if !prepared {
			fmt.Fprintln(os.Stderr, "serve: -engine auto requires -prepared")
			os.Exit(2)
		}
		engines = []string{"auto"}
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown -engine %q\n", engine)
		os.Exit(2)
	}

	total := 0
	for _, sp := range specs {
		total += sp.clients
	}
	fmt.Fprintf(os.Stderr, "driving: %d clients over %v, engines %v, prepared=%v\n", total, d, engines, prepared)

	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()

	var wg sync.WaitGroup
	var preps []prepSpec
	if prepared {
		preps = preparedWorkload()
	}
	cid := 0
	for _, sp := range specs {
		texts := workloadTexts(sp.workload)
		for c := 0; c < sp.clients; c++ {
			cid++
			wg.Add(1)
			go func(sp tenantSpec, texts []string, c int) {
				defer wg.Done()
				cl := client.New(base, sp.name)
				rnd := rand.New(rand.NewSource(int64(c)))
				for i := c; ctx.Err() == nil; i++ {
					eng := engines[i%len(engines)]
					var rows *client.Rows
					var err error
					if prepared {
						k := rnd.Intn(len(preps))
						rows, err = cl.QueryPrepared(ctx, eng, preps[k].text, preps[k].args(rnd)...)
					} else {
						rows, err = cl.Query(ctx, eng, texts[i%len(texts)])
					}
					if err == nil {
						_, err = rows.All()
					}
					var retry *client.RetryError
					switch {
					case err == nil || ctx.Err() != nil:
					case errors.As(err, &retry):
						// Queue-depth backpressure: honor the server's
						// retry-after estimate.
						select {
						case <-time.After(retry.RetryAfter):
						case <-ctx.Done():
						}
					default:
						fmt.Fprintf(os.Stderr, "serve: client %d (%s): %v\n", c, sp.name, err)
						os.Exit(1)
					}
				}
			}(sp, texts, cid)
		}
	}
	wg.Wait()

	raw, err := client.New(base, "").Stats(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: statsz: %v\n", err)
		return nil
	}
	return raw
}

// runFairbench runs the three-phase fairness experiment: the light
// tenant's solo p99, then its p99 while a heavy tenant floods the
// service — once under DRR, once under FIFO.
func runFairbench(tpchDB, ssbDB *paradigms.DB, opts paradigms.ServiceOptions, d time.Duration, statsJSON bool) {
	if opts.MaxConcurrent == 0 {
		opts.MaxConcurrent = 2 // keep a queue: contention is the experiment
	}
	if opts.TenantCaps == nil && opts.MaxPerTenant == 0 {
		// The heavy tenant can never occupy every slot. Under DRR the
		// capped heavy tenant is stepped over and the light tenant admits
		// into the spare slot immediately; under FIFO the capped head
		// blocks the whole line anyway — the difference the experiment
		// exists to show.
		opts.TenantCaps = map[string]int{"heavy": opts.MaxConcurrent - 1}
	}
	if opts.MorselSize == 0 {
		// Fine morsels make the per-morsel fairness throttle responsive:
		// a long scan yields hundreds of times per query instead of a
		// handful, so its pauses actually cede CPU to the light tenant.
		opts.MorselSize = 4096
	}
	if opts.YieldPause == 0 {
		opts.YieldPause = 2 * time.Millisecond
	}
	heavy := tenantSpec{name: "heavy", clients: 12, workload: "heavy"}
	light := tenantSpec{name: "light", clients: 4, workload: "light"}

	phase := func(label string, fifo bool, specs ...tenantSpec) server.TenantStats {
		o := opts
		o.FIFO = fifo
		svc := paradigms.NewService(tpchDB, ssbDB, o)
		base, shutdown, err := serve(svc, "127.0.0.1:0", o.Metrics, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		raw := drive(base, specs, "mixed", false, d)
		shutdown()
		svc.Close()
		st := svc.Stats()
		fmt.Printf("--- %s ---\n%s", label, st)
		if statsJSON && raw != nil {
			fmt.Printf("%s\n", raw)
		}
		return st.Tenants["light"]
	}

	solo := phase("phase 1: light solo (DRR)", false, light)
	drr := phase("phase 2: light vs heavy (DRR)", false, heavy, light)
	fifo := phase("phase 3: light vs heavy (FIFO)", true, heavy, light)

	ratio := func(a, b time.Duration) float64 {
		if b <= 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	fmt.Printf("\nfairness: light p99 solo %v | drr %v (%.1fx solo) | fifo %v (%.1fx solo)\n",
		solo.P99, drr.P99, ratio(drr.P99, solo.P99), fifo.P99, ratio(fifo.P99, solo.P99))
}
