// Command serve drives the concurrent query service (internal/server)
// with a closed-loop mixed TPC-H + SSB workload: a configurable number of
// clients each submit a query, wait for its validated result, and
// immediately submit the next — the inter-query concurrency regime the
// paper's single-query experiments deliberately exclude (see DESIGN.md
// §5).
//
// Usage:
//
//	serve -sf 0.1 -ssbsf 0.1 -clients 16 -duration 10s
//	serve -clients 4 -engine typer -queries Q1,Q6
//	serve -clients 16 -budget 8 -maxconc 16 -novalidate
//	serve -clients 8 -sql -statsjson
//	serve -clients 8 -prepared -engine auto
//
// Engine "mixed" (the default) alternates Typer and Tectorwise per query.
// -sql additionally mixes the canonical ad-hoc SQL texts of the
// benchmark queries into the workload, submitted as raw SQL through the
// front-end on whichever engine the rotation picks: Tectorwise lowers
// them onto the vectorized operator layer, Typer onto the compiled
// fused pipelines (internal/compiled). Every result is validated
// against the reference oracles unless -novalidate is given. On exit
// the aggregate stats report is printed; -statsjson additionally emits
// the machine-readable snapshot.
//
// -prepared switches to the prepared-statement workload: clients
// prepare a parameterized template per execution (Service.Prepare —
// every prepare after each template's first is a plan-cache hit) and
// execute it with randomized argument bindings, no per-query parse or
// plan. In this mode "mixed" rotates Typer, Tectorwise, and "auto";
// -engine auto routes every execution through each statement's
// adaptive router, which converges onto the empirically faster backend
// per statement — the paper's finding that neither paradigm dominates,
// exploited live. The final report includes plan-cache hit/miss/
// eviction counters.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"paradigms"
	"paradigms/internal/logical"
	"paradigms/internal/server"
)

// prepSpec is one parameterized template of the -prepared workload:
// the SQL text (with `?` placeholders) plus an argument sampler.
type prepSpec struct {
	text string
	args func(r *rand.Rand) []string
}

// preparedWorkload mixes the two regimes the paper separates:
// computation-heavy scans (Q6/Q1.1 shapes, where the compiled engine
// wins) and join/probe-heavy aggregations (Q3 shape, where the
// vectorized engine wins) — so adaptive auto-routing has something
// real to learn per statement.
func preparedWorkload() []prepSpec {
	date := func(y, m, d int) string { return fmt.Sprintf("%04d-%02d-%02d", y, m, d) }
	return []prepSpec{
		{
			text: `select sum(l_extendedprice * l_discount) as revenue from lineitem
				where l_shipdate >= ? and l_shipdate < ? and l_discount between ? and ? and l_quantity < ?`,
			args: func(r *rand.Rand) []string {
				y := 1993 + r.Intn(4)
				lo := 2 + r.Intn(6)
				return []string{date(y, 1, 1), date(y+1, 1, 1),
					fmt.Sprintf("0.0%d", lo), fmt.Sprintf("0.0%d", lo+2),
					fmt.Sprintf("%d", 20+r.Intn(15))}
			},
		},
		{
			text: `select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
				o_orderdate, o_shippriority
				from customer, orders, lineitem
				where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey
				and o_orderdate < ? and l_shipdate > ?
				group by l_orderkey, o_orderdate, o_shippriority
				order by revenue desc, o_orderdate, l_orderkey limit 10`,
			args: func(r *rand.Rand) []string {
				d := date(1995, 1+r.Intn(6), 1+r.Intn(28))
				return []string{d, d}
			},
		},
		{
			text: `select sum(lo_extendedprice * lo_discount) as revenue from lineorder, date
				where lo_orderdate = d_datekey and d_year = ? and lo_discount between ? and ? and lo_quantity < ?`,
			args: func(r *rand.Rand) []string {
				lo := 1 + r.Intn(3)
				return []string{fmt.Sprintf("%d", 1992+r.Intn(6)),
					fmt.Sprintf("%d", lo), fmt.Sprintf("%d", lo+2),
					fmt.Sprintf("%d", 20+r.Intn(15))}
			},
		},
	}
}

func main() {
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor")
	ssbsf := flag.Float64("ssbsf", 0.1, "SSB scale factor")
	clients := flag.Int("clients", 16, "closed-loop client count")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	engine := flag.String("engine", "mixed", "typer | tectorwise | mixed")
	queryList := flag.String("queries", "", "comma-separated query subset (default: all TPC-H + SSB)")
	budget := flag.Int("budget", 0, "global worker budget (0 = GOMAXPROCS)")
	maxconc := flag.Int("maxconc", 0, "max concurrently executing queries (0 = default)")
	maxqueued := flag.Int("maxqueued", 0, "admission queue bound (0 = unbounded)")
	vecSize := flag.Int("vecsize", 0, "Tectorwise vector size (0 = default)")
	novalidate := flag.Bool("novalidate", false, "skip checking results against the reference oracles")
	withSQL := flag.Bool("sql", false, "mix ad-hoc SQL texts of the benchmark queries into the workload")
	prepared := flag.Bool("prepared", false, "prepared-statement workload: parameterized templates, plan cache, adaptive auto-routing")
	statsJSON := flag.Bool("statsjson", false, "also emit the final stats as JSON")
	flag.Parse()

	var engines []paradigms.Engine
	switch *engine {
	case "typer":
		engines = []paradigms.Engine{paradigms.Typer}
	case "tectorwise":
		engines = []paradigms.Engine{paradigms.Tectorwise}
	case "auto":
		if !*prepared {
			fmt.Fprintln(os.Stderr, "serve: -engine auto requires -prepared (adaptive routing lives on prepared statements)")
			os.Exit(2)
		}
		engines = []paradigms.Engine{paradigms.Auto}
	case "mixed":
		engines = []paradigms.Engine{paradigms.Typer, paradigms.Tectorwise}
		if *prepared {
			engines = append(engines, paradigms.Auto)
		}
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown -engine %q\n", *engine)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generating TPC-H SF=%g and SSB SF=%g...\n", *sf, *ssbsf)
	tpchDB := paradigms.GenerateTPCH(*sf, 0)
	ssbDB := paradigms.GenerateSSB(*ssbsf, 0)

	var queries []string
	if *queryList != "" {
		queries = strings.Split(*queryList, ",")
	} else {
		queries = append(paradigms.Queries(tpchDB), paradigms.Queries(ssbDB)...)
	}
	if *withSQL {
		for _, dataset := range []string{"tpch", "ssb"} {
			for _, name := range logical.SQLQueries(dataset) {
				text, _ := logical.SQLText(dataset, name)
				queries = append(queries, text)
			}
		}
	}

	svc := paradigms.NewService(tpchDB, ssbDB, paradigms.ServiceOptions{
		WorkerBudget:   *budget,
		MaxConcurrent:  *maxconc,
		MaxQueued:      *maxqueued,
		VectorSize:     *vecSize,
		SkipValidation: *novalidate,
	})

	// The prepared workload validates every template up front (fail
	// fast on a broken text, and warm the plan cache); clients then
	// re-prepare per execution — cache hits — and execute.
	var specs []prepSpec
	var stmts []*server.Prepared
	if *prepared {
		specs = preparedWorkload()
		for _, sp := range specs {
			st, err := svc.Prepare(sp.text)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: prepare %q: %v\n", sp.text, err)
				os.Exit(1)
			}
			stmts = append(stmts, st)
		}
	}

	mode := "queries"
	if *prepared {
		mode = "prepared statements"
	}
	n := len(queries)
	if *prepared {
		n = len(stmts)
	}
	fmt.Fprintf(os.Stderr, "serving: %d clients, %s, engines %v, %d %s\n",
		*clients, *duration, engines, n, mode)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(c)))
			// Stagger starting points so clients don't run in lockstep.
			for i := c; ctx.Err() == nil; i++ {
				eng := engines[i%len(engines)]
				var q string
				var err error
				if *prepared {
					// Statement choice is random (seeded per client) so
					// it never runs in lockstep with the engine rotation
					// — every statement sees every engine. Re-preparing
					// per execution is the realistic client behavior the
					// plan cache amortizes: all but the first prepare of
					// each template are cache hits.
					k := rnd.Intn(len(stmts))
					q = specs[k].text
					var p *server.Prepared
					if p, err = svc.Prepare(q); err == nil {
						_, err = svc.DoPrepared(ctx, string(eng), p, specs[k].args(rnd)...)
					}
				} else {
					q = queries[i%len(queries)]
					_, err = svc.Do(ctx, string(eng), q)
				}
				switch {
				case err == nil || ctx.Err() != nil:
				case errors.Is(err, server.ErrOverloaded):
					// Expected under -maxqueued: admission control is
					// shedding load. Back off and retry; rejections are
					// counted in the final stats.
					time.Sleep(time.Millisecond)
				default:
					fmt.Fprintf(os.Stderr, "serve: client %d: %s/%s: %v\n", c, eng, q, err)
					os.Exit(1)
				}
			}
		}(c)
	}
	wg.Wait()
	svc.Close()

	st := svc.Stats()
	fmt.Print(st)
	if *statsJSON {
		raw, err := json.Marshal(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: marshal stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", raw)
	}
}
