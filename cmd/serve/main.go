// Command serve drives the concurrent query service (internal/server)
// with a closed-loop mixed TPC-H + SSB workload: a configurable number of
// clients each submit a query, wait for its validated result, and
// immediately submit the next — the inter-query concurrency regime the
// paper's single-query experiments deliberately exclude (see DESIGN.md
// §5).
//
// Usage:
//
//	serve -sf 0.1 -ssbsf 0.1 -clients 16 -duration 10s
//	serve -clients 4 -engine typer -queries Q1,Q6
//	serve -clients 16 -budget 8 -maxconc 16 -novalidate
//	serve -clients 8 -sql -statsjson
//
// Engine "mixed" (the default) alternates Typer and Tectorwise per query.
// -sql additionally mixes the canonical ad-hoc SQL texts of the
// benchmark queries into the workload, submitted as raw SQL through the
// front-end on whichever engine the rotation picks: Tectorwise lowers
// them onto the vectorized operator layer, Typer onto the compiled
// fused pipelines (internal/compiled). Every result is validated
// against the reference oracles unless -novalidate is given. On exit
// the aggregate stats report is printed; -statsjson additionally emits
// the machine-readable snapshot.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"paradigms"
	"paradigms/internal/logical"
	"paradigms/internal/server"
)

func main() {
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor")
	ssbsf := flag.Float64("ssbsf", 0.1, "SSB scale factor")
	clients := flag.Int("clients", 16, "closed-loop client count")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	engine := flag.String("engine", "mixed", "typer | tectorwise | mixed")
	queryList := flag.String("queries", "", "comma-separated query subset (default: all TPC-H + SSB)")
	budget := flag.Int("budget", 0, "global worker budget (0 = GOMAXPROCS)")
	maxconc := flag.Int("maxconc", 0, "max concurrently executing queries (0 = default)")
	maxqueued := flag.Int("maxqueued", 0, "admission queue bound (0 = unbounded)")
	vecSize := flag.Int("vecsize", 0, "Tectorwise vector size (0 = default)")
	novalidate := flag.Bool("novalidate", false, "skip checking results against the reference oracles")
	withSQL := flag.Bool("sql", false, "mix ad-hoc SQL texts of the benchmark queries into the workload")
	statsJSON := flag.Bool("statsjson", false, "also emit the final stats as JSON")
	flag.Parse()

	var engines []paradigms.Engine
	switch *engine {
	case "typer":
		engines = []paradigms.Engine{paradigms.Typer}
	case "tectorwise":
		engines = []paradigms.Engine{paradigms.Tectorwise}
	case "mixed":
		engines = []paradigms.Engine{paradigms.Typer, paradigms.Tectorwise}
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown -engine %q\n", *engine)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generating TPC-H SF=%g and SSB SF=%g...\n", *sf, *ssbsf)
	tpchDB := paradigms.GenerateTPCH(*sf, 0)
	ssbDB := paradigms.GenerateSSB(*ssbsf, 0)

	var queries []string
	if *queryList != "" {
		queries = strings.Split(*queryList, ",")
	} else {
		queries = append(paradigms.Queries(tpchDB), paradigms.Queries(ssbDB)...)
	}
	if *withSQL {
		for _, dataset := range []string{"tpch", "ssb"} {
			for _, name := range logical.SQLQueries(dataset) {
				text, _ := logical.SQLText(dataset, name)
				queries = append(queries, text)
			}
		}
	}

	svc := paradigms.NewService(tpchDB, ssbDB, paradigms.ServiceOptions{
		WorkerBudget:   *budget,
		MaxConcurrent:  *maxconc,
		MaxQueued:      *maxqueued,
		VectorSize:     *vecSize,
		SkipValidation: *novalidate,
	})

	fmt.Fprintf(os.Stderr, "serving: %d clients, %s, engines %v, %d queries\n",
		*clients, *duration, engines, len(queries))

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Stagger starting points so clients don't run in lockstep.
			for i := c; ctx.Err() == nil; i++ {
				eng := engines[i%len(engines)]
				q := queries[i%len(queries)]
				_, err := svc.Do(ctx, string(eng), q)
				switch {
				case err == nil || ctx.Err() != nil:
				case errors.Is(err, server.ErrOverloaded):
					// Expected under -maxqueued: admission control is
					// shedding load. Back off and retry; rejections are
					// counted in the final stats.
					time.Sleep(time.Millisecond)
				default:
					fmt.Fprintf(os.Stderr, "serve: client %d: %s/%s: %v\n", c, eng, q, err)
					os.Exit(1)
				}
			}
		}(c)
	}
	wg.Wait()
	svc.Close()

	st := svc.Stats()
	fmt.Print(st)
	if *statsJSON {
		raw, err := json.Marshal(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: marshal stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", raw)
	}
}
