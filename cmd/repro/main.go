// Command repro regenerates the tables and figures of "Everything You
// Always Wanted to Know About Compiled and Vectorized Queries But Were
// Afraid to Ask" (VLDB 2018).
//
// Usage:
//
//	repro -exp fig3 [-sf 1] [-ssbsf 1] [-threads 0] [-reps 3]
//	repro -exp all -sf 0.1        # quick pass over every experiment
//	repro -list
//
// Experiment ids mirror the paper: fig3..fig12, table1..table6, ssb, ec2,
// plus the §8 demos (compile, profiling, adaptivity, oltp) and the
// design-choice ablations (ablation). See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"paradigms/internal/bench"
	"paradigms/internal/microsim"
	"paradigms/internal/storage"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	sf := flag.Float64("sf", 1, "TPC-H scale factor")
	ssbsf := flag.Float64("ssbsf", 1, "SSB scale factor")
	simSF := flag.Float64("simsf", 0.1, "scale factor for simulator-based experiments")
	threads := flag.Int("threads", 0, "max threads (0 = GOMAXPROCS)")
	reps := flag.Int("reps", 3, "timing repetitions (best of)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.SortedExperimentNames(), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp required (try -list)")
		os.Exit(2)
	}
	cfg := bench.Config{SF: *sf, SSBSF: *ssbsf, Threads: *threads, Reps: *reps}
	if cfg.Threads == 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}

	var tpchDB, ssbDB, simDB *storage.Database
	getTPCH := func() *storage.Database {
		if tpchDB == nil {
			fmt.Fprintf(os.Stderr, "generating TPC-H SF=%g...\n", cfg.SF)
			tpchDB = bench.TPCHGen(cfg.SF)
		}
		return tpchDB
	}
	getSSB := func() *storage.Database {
		if ssbDB == nil {
			fmt.Fprintf(os.Stderr, "generating SSB SF=%g...\n", cfg.SSBSF)
			ssbDB = bench.SSBGen(cfg.SSBSF)
		}
		return ssbDB
	}
	getSim := func() *storage.Database {
		if simDB == nil {
			fmt.Fprintf(os.Stderr, "generating TPC-H SF=%g (simulator)...\n", *simSF)
			simDB = bench.TPCHGen(*simSF)
		}
		return simDB
	}

	run := func(id string) {
		switch id {
		case "fig3":
			fmt.Print(bench.Fig3(getTPCH(), cfg))
		case "table1":
			fmt.Print(bench.Table1Text(getSim()))
		case "fig4":
			fmt.Print(bench.Fig4Text([]float64{0.1, 0.3, 1}))
		case "fig5":
			fmt.Print(bench.Fig5Text(getTPCH(), cfg))
		case "ssb":
			fmt.Print(bench.SSBText(getSSB(), cfg))
		case "table2":
			fmt.Print(bench.Table2Text(getTPCH(), cfg))
		case "fig6":
			fmt.Print(bench.Fig6Text(cfg))
		case "fig7":
			fmt.Print(bench.Fig7Text())
		case "fig8":
			fmt.Print(bench.Fig8Text(getTPCH(), cfg))
		case "fig9":
			fmt.Print(bench.Fig9Text())
		case "fig10":
			fmt.Print(bench.Fig10Text(getSim()))
		case "table3":
			n := runtime.GOMAXPROCS(0)
			steps := []int{1}
			for _, s := range []int{n / 2, n, 2 * n} {
				if s > steps[len(steps)-1] {
					steps = append(steps, s)
				}
			}
			fmt.Print(bench.Table3Text(getTPCH(), steps, cfg))
		case "table4":
			fmt.Print(bench.Table4Text())
		case "table5":
			fmt.Print(bench.Table5Text(getTPCH(), "", cfg))
		case "fig11":
			fmt.Print(bench.FigHWText(getSim(),
				[]microsim.HW{microsim.Skylake, microsim.Threadripper}, false))
		case "fig12":
			fmt.Print(bench.FigHWText(getSim(),
				[]microsim.HW{microsim.Skylake, microsim.KNL}, true))
		case "table6":
			fmt.Print(bench.Table6Text())
		case "ec2":
			fmt.Print(bench.EC2Text())
		case "compile":
			fmt.Print(bench.CompileText())
		case "profiling":
			fmt.Print(bench.ProfilingText(getTPCH(), cfg))
		case "adaptivity":
			fmt.Print(bench.AdaptivityText(getTPCH(), cfg))
		case "oltp":
			fmt.Print(bench.OLTPText(cfg))
		case "ablation":
			fmt.Print(bench.AblationText(getTPCH(), cfg))
		default:
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, id := range bench.SortedExperimentNames() {
			fmt.Printf("=== %s ===\n", id)
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}
