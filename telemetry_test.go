package paradigms

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/obs"
	"paradigms/internal/proto"
	"paradigms/internal/proto/client"
	"paradigms/internal/server"
)

const telemetryQ3 = `select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
	o_orderdate, o_shippriority
	from customer, orders, lineitem
	where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey
	and o_orderdate < '1995-03-15' and l_shipdate > '1995-03-15'
	group by l_orderkey, o_orderdate, o_shippriority
	order by revenue desc, o_orderdate, l_orderkey limit 10`

// TestAnalyzeEndToEnd runs an instrumented Q3-shaped query on every
// backend through the service and checks the collector's story is
// coherent: one stat per pipeline, estimates and observations filled
// in, and the same observed cardinalities on every engine (both
// lowerings produce the same pipeline decomposition).
func TestAnalyzeEndToEnd(t *testing.T) {
	db := GenerateTPCH(0.01, 0)
	svc := NewService(db, nil, ServiceOptions{SkipValidation: true})
	defer svc.Close()
	ctx := context.Background()

	var base []obs.PipeStat
	for _, engine := range []string{"typer", "tectorwise", "hybrid"} {
		col := obs.NewCollector()
		h, err := svc.SubmitReq(ctx, server.Req{Engine: engine, Query: telemetryQ3, Collector: col})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if _, err := h.Wait(ctx); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		pipes := col.Pipes()
		if len(pipes) != 3 {
			t.Fatalf("%s: %d pipes, want 3 (customer build, orders build, lineitem final)", engine, len(pipes))
		}
		for _, p := range pipes {
			if p.Table == "" || p.RowsIn <= 0 || p.EstRows <= 0 || p.Nanos <= 0 {
				t.Errorf("%s: pipe %d incomplete: %+v", engine, p.Index, p)
			}
			if p.Engine != "t" && p.Engine != "v" {
				t.Errorf("%s: pipe %d engine tag %q", engine, p.Index, p.Engine)
			}
		}
		if !pipes[0].Build || !pipes[1].Build || pipes[2].Build {
			t.Errorf("%s: roles wrong: %+v", engine, pipes)
		}
		if pipes[0].HTRows <= 0 || pipes[1].HTRows <= 0 {
			t.Errorf("%s: build pipes missing hash-table sizes", engine)
		}
		if base == nil {
			base = pipes
			continue
		}
		for i := range pipes {
			if pipes[i].RowsOut != base[i].RowsOut || pipes[i].HTRows != base[i].HTRows {
				t.Errorf("%s: pipe %d observed %d rows / %d ht, typer observed %d / %d",
					engine, i, pipes[i].RowsOut, pipes[i].HTRows, base[i].RowsOut, base[i].HTRows)
			}
		}
	}
}

// TestAnalyzeOverWire checks the /v1/query analyze option: the stream
// carries an analyze frame whose pipeline stats decode strictly and
// describe the query that ran.
func TestAnalyzeOverWire(t *testing.T) {
	db := GenerateTPCH(0.01, 0)
	svc := NewService(db, nil, ServiceOptions{SkipValidation: true})
	defer svc.Close()
	ts := httptest.NewServer(proto.NewServer(svc, nil).Handler())
	defer ts.Close()
	cl := client.New(ts.URL, "")

	rows, err := cl.QueryAnalyze(context.Background(), "hybrid", telemetryQ3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d rows, want 10", len(got))
	}
	pipes := rows.Pipes()
	if len(pipes) != 3 {
		t.Fatalf("analyze frame carried %d pipes, want 3", len(pipes))
	}
	if pipes[2].Table != "lineitem" || pipes[2].Build {
		t.Errorf("final pipe wrong: %+v", pipes[2])
	}
	if !strings.HasPrefix(rows.Engine(), "hybrid[") {
		t.Errorf("end frame engine %q not hybrid-decorated", rows.Engine())
	}
	// Un-analyzed queries must not regress: no analyze frame.
	rows, err = cl.Query(context.Background(), "typer", telemetryQ3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.All(); err != nil {
		t.Fatal(err)
	}
	if rows.Pipes() != nil {
		t.Error("plain query unexpectedly carried an analyze frame")
	}
}

// TestStreamingHybridDecoration is the satellite regression test: the
// streaming end frame must report the hybrid per-pipeline assignment
// ("hybrid[...]") on both the ad-hoc and prepared paths, while the
// service's per-engine stats count every assignment variant under the
// single "hybrid" key.
func TestStreamingHybridDecoration(t *testing.T) {
	db := GenerateTPCH(0.01, 0)
	svc := NewService(db, nil, ServiceOptions{SkipValidation: true})
	defer svc.Close()
	ts := httptest.NewServer(proto.NewServer(svc, nil).Handler())
	defer ts.Close()
	cl := client.New(ts.URL, "")
	ctx := context.Background()

	adhoc, err := cl.Query(ctx, "hybrid", telemetryQ3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adhoc.All(); err != nil {
		t.Fatal(err)
	}
	if eng := adhoc.Engine(); !strings.HasPrefix(eng, "hybrid[") || !strings.HasSuffix(eng, "]") {
		t.Errorf("ad-hoc streamed end frame engine %q, want hybrid[...]", eng)
	}

	prep, err := cl.QueryPrepared(ctx, "hybrid", telemetryQ3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.All(); err != nil {
		t.Fatal(err)
	}
	if eng := prep.Engine(); !strings.HasPrefix(eng, "hybrid[") || !strings.HasSuffix(eng, "]") {
		t.Errorf("prepared streamed end frame engine %q, want hybrid[...]", eng)
	}

	st := svc.Stats()
	if n := st.PerEngine["hybrid"]; n != 2 {
		t.Errorf("PerEngine[hybrid] = %d, want 2 (decoration must strip for attribution): %v", n, st.PerEngine)
	}
	for k := range st.PerEngine {
		if strings.ContainsRune(k, '[') {
			t.Errorf("decorated engine key %q leaked into PerEngine", k)
		}
	}
}

// TestQueryLogReconcile wires a query log + metrics registry into the
// service, runs materialized and streamed queries, and checks every
// NDJSON record parses and reconciles with what ran: result
// cardinality, engine, plan shape, and per-pipeline stats.
func TestQueryLogReconcile(t *testing.T) {
	db := GenerateTPCH(0.01, 0)
	path := filepath.Join(t.TempDir(), "queries.ndjson")
	ql, err := obs.OpenQueryLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewMetrics()
	svc := NewService(db, nil, ServiceOptions{
		SkipValidation: true,
		QueryLog:       ql,
		Metrics:        metrics,
	})
	ts := httptest.NewServer(proto.NewServer(svc, nil).WithMetrics(metrics).Handler())
	cl := client.New(ts.URL, "logged")
	ctx := context.Background()

	// A projection query: the final pipeline's observed output is
	// exactly the result cardinality, so the log reconciles row counts.
	projection := `select l_orderkey, l_quantity from lineitem where l_quantity < 3`
	res, err := svc.Do(ctx, "typer", projection)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := int64(len(res.(*logical.Result).Rows))
	if wantRows == 0 {
		t.Fatal("projection returned no rows; test needs a non-empty result")
	}
	streamed, err := cl.Query(ctx, "tectorwise", projection)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := streamed.All(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	svc.Close()
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []obs.QueryRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec obs.QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable query log line: %v\n%s", err, sc.Text())
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("query log has %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Rows != wantRows {
			t.Errorf("record rows %d, want %d (engine %s)", rec.Rows, wantRows, rec.Engine)
		}
		if rec.SQL == "" || rec.Time == "" || rec.PlanShape == "" || rec.CatalogVersion == 0 {
			t.Errorf("record missing identity fields: %+v", rec)
		}
		if len(rec.Pipes) != 1 {
			t.Errorf("record has %d pipes, want 1: %+v", len(rec.Pipes), rec.Pipes)
			continue
		}
		if rec.Pipes[0].RowsOut != wantRows {
			t.Errorf("final pipe observed %d rows, result has %d", rec.Pipes[0].RowsOut, wantRows)
		}
		if rec.Pipes[0].Table != "lineitem" {
			t.Errorf("final pipe table %q, want lineitem", rec.Pipes[0].Table)
		}
	}
	if recs[0].PlanShape != recs[1].PlanShape {
		t.Errorf("same query hashed to different shapes: %q vs %q", recs[0].PlanShape, recs[1].PlanShape)
	}
	if recs[0].Used != "typer" || recs[1].Used != "tectorwise" {
		t.Errorf("engines misattributed: %q, %q", recs[0].Used, recs[1].Used)
	}

	// The metrics registry observed both executions.
	var b strings.Builder
	if _, err := metrics.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`engine="typer"`, `engine="tectorwise"`, `paradigms_pipeline_seconds`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics missing %s:\n%s", want, b.String())
		}
	}
}
