// Microsim: drive the micro-architectural simulator directly — first on a
// synthetic probe workload to visualize the cache cliff, then on the two
// engines' traced query twins to compare their per-tuple counter
// profiles, reproducing the mechanism behind Table 1.
//
//	go run ./examples/microsim
package main

import (
	"fmt"
	"unsafe"

	"paradigms"
	"paradigms/internal/microsim"
)

func main() {
	fmt.Println("Cache cliff: random 8-byte loads over growing working sets (Skylake model)")
	fmt.Printf("%14s %12s %10s %10s %10s\n", "working set", "cyc/access", "L1 miss%", "L2 miss%", "LLC miss%")
	for _, size := range []int{16 << 10, 256 << 10, 4 << 20, 64 << 20} {
		cpu := microsim.NewCPU(microsim.Skylake)
		table := make([]uint64, size/8)
		state := uint64(1)
		const accesses = 200_000
		for i := 0; i < accesses; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			cpu.Ops(4)
			cpu.Load(unsafe.Pointer(&table[state%uint64(len(table))]), 8)
		}
		fmt.Printf("%12dKB %12.1f %9.1f%% %9.1f%% %9.1f%%\n",
			size>>10,
			float64(cpu.Cycles())/accesses,
			100*float64(cpu.L1.Misses)/float64(cpu.L1.Accesses),
			100*float64(cpu.L2.Misses)/float64(max64(cpu.L2.Accesses, 1)),
			100*float64(cpu.LLC.Misses)/float64(max64(cpu.LLC.Accesses, 1)))
	}

	fmt.Println("\nEngine counter profiles (traced twins, TPC-H SF 0.05):")
	db := paradigms.GenerateTPCH(0.05, 0)
	fmt.Printf("%-14s %8s %6s %8s %8s %8s %9s\n",
		"engine/query", "cycles", "IPC", "instr", "L1miss", "brMiss", "memStall")
	for _, q := range []string{"Q1", "Q3", "Q9"} {
		for _, eng := range []string{"typer", "tectorwise"} {
			ctr := microsim.TracedTPCH(db, microsim.Skylake, eng, q)
			fmt.Printf("%-14s %8.1f %6.2f %8.1f %8.2f %8.3f %9.1f\n",
				eng+"/"+q, ctr.Cycles, ctr.IPC, ctr.Instr, ctr.L1Miss,
				ctr.BranchMiss, ctr.MemStall)
		}
	}
	fmt.Println("\nReading the profile: the vectorized engine executes ~2x the instructions")
	fmt.Println("(materialized intermediates) but overlaps cache misses better (lower")
	fmt.Println("memory-stall share on the join queries) — the paper's §4.1 result.")
}

func max64(a uint64, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
