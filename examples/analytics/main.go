// Analytics: build a custom vectorized query with the Tectorwise operator
// and primitive APIs — a query that is not part of the paper's workload.
//
// The query, over the Star Schema Benchmark:
//
//	SELECT s_nation, SUM(lo_revenue)
//	FROM lineorder, supplier
//	WHERE lo_suppkey = s_suppkey AND s_region = ASIA
//	  AND lo_quantity < 10
//	GROUP BY s_nation
//
// demonstrating selection cascades, a hash join, and a group-by composed
// from the engine's building blocks.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"sort"

	"paradigms"
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/tpch"
	"paradigms/internal/tw"
	"paradigms/internal/types"
	"paradigms/internal/vector"
)

func main() {
	db := paradigms.GenerateSSB(0.1, 0)
	lo := db.Rel("lineorder")
	losk := lo.Int32("lo_suppkey")
	loqty := lo.Numeric("lo_quantity")
	lorev := lo.Numeric("lo_revenue")
	supp := db.Rel("supplier")
	sk := supp.Int32("s_suppkey")
	sregion := supp.Int32("s_region")
	snation := supp.Int32("s_nation")

	const asia = int32(2)
	const workers = 4
	vec := vector.DefaultSize

	htSupp := hashtable.New(2, workers)
	dispSupp := exec.NewDispatcher(supp.Rows(), 0)
	dispFact := exec.NewDispatcher(lo.Rows(), 0)
	bar := exec.NewBarrier(workers)
	partial := make([]map[int32]int64, workers)

	exec.Parallel(workers, func(w int) {
		bufs := vector.NewBuffers(vec)
		sel := bufs.Sel()
		keys := bufs.Ref()
		hashes := bufs.Ref()
		nations := bufs.Ref()

		// Build: supplier σ(region=ASIA) → HT(suppkey → nation).
		scanS := tw.NewScan(dispSupp, vec)
		sh := htSupp.Shard(w)
		for {
			n := scanS.Next()
			if n == 0 {
				break
			}
			b := scanS.Base
			k := tw.SelEq(sregion[b:b+n], asia, sel)
			if k == 0 {
				continue
			}
			tw.MapWidenSel(sk[b:b+n], sel[:k], keys)
			tw.MapHashU64(keys[:k], hashes)
			tw.MapWidenSel(snation[b:b+n], sel[:k], nations)
			base := sh.AllocN(htSupp, k)
			tw.ScatterHashes(htSupp, base, hashes, k)
			tw.ScatterWord(htSupp, base, 0, keys, k)
			tw.ScatterWord(htSupp, base, 1, nations, k)
		}
		tw.BuildBarrier(htSupp, bar, w)

		// Probe: lineorder σ(quantity<10) ⋈ HT → Γ(nation).
		sums := make(map[int32]int64)
		partial[w] = sums
		scanF := tw.NewScan(dispFact, vec)
		cand := make([]hashtable.Ref, vec)
		candP := bufs.Sel()
		mRefs := make([]hashtable.Ref, vec)
		mPos := bufs.Sel()
		abs := bufs.Sel()
		rev := bufs.I64()
		for {
			n := scanF.Next()
			if n == 0 {
				break
			}
			b := scanF.Base
			k := tw.SelLT(loqty[b:b+n], types.Numeric(10*types.NumericScale), sel)
			if k == 0 {
				continue
			}
			tw.MapWidenSel(losk[b:b+n], sel[:k], keys)
			tw.MapHashU64(keys[:k], hashes)
			nm := tw.Probe(htSupp, keys, hashes, k, cand, candP, mRefs, mPos)
			if nm == 0 {
				continue
			}
			tw.ComposePos(sel, mPos[:nm], abs)
			tw.FetchI64(lorev[b:b+n], abs[:nm], rev)
			for i := 0; i < nm; i++ {
				nation := int32(htSupp.Word(mRefs[i], 1))
				sums[nation] += rev[i]
			}
		}
	})

	total := make(map[int32]int64)
	for _, p := range partial {
		for nation, s := range p {
			total[nation] += s
		}
	}
	type row struct {
		nation int32
		sum    int64
	}
	rows := make([]row, 0, len(total))
	for n, s := range total {
		rows = append(rows, row{n, s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sum > rows[j].sum })

	fmt.Println("Small-order revenue by Asian supplier nation (custom vectorized query):")
	for _, r := range rows {
		fmt.Printf("  %-12s %16s\n", tpch.Nations[r.nation].Name, types.Numeric(r.sum))
	}
}
