// Adaptive: the §8.4 micro-adaptivity demo. Vectorized engines interpret
// queries, so they can swap execution strategies mid-flight; this example
// compares Tectorwise's generic hash aggregation against the adaptive
// ordered aggregation on Q1, across vector sizes (the optimization's
// benefit depends on the vector fitting useful per-group runs).
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"reflect"
	"time"

	"paradigms"
	"paradigms/internal/queries"
	"paradigms/internal/tw"
)

func main() {
	db := paradigms.GenerateTPCH(0.3, 0)
	want := queries.RefQ1(db)

	fmt.Println("Tectorwise Q1: hash aggregation vs adaptive ordered aggregation (1 thread)")
	fmt.Printf("%10s %14s %14s %9s\n", "vec size", "hash agg", "ordered agg", "speedup")
	for _, vec := range []int{256, 1000, 4096, 16384} {
		hash := best(3, func() queries.Q1Result { return tw.Q1(db, 1, vec) })
		ordered := best(3, func() queries.Q1Result { return tw.Q1Adaptive(db, 1, vec) })
		if got := tw.Q1Adaptive(db, 1, vec); !reflect.DeepEqual(got, want) {
			panic("adaptive variant produced a different result")
		}
		fmt.Printf("%10d %12.1fms %12.1fms %8.2fx\n",
			vec, ms(hash), ms(ordered), float64(hash)/float64(ordered))
	}
	fmt.Println("\nBoth variants return identical results; the adaptive one replaces the")
	fmt.Println("per-tuple hash-table walk with per-group selection vectors and register sums.")
}

func best(reps int, f func() queries.Q1Result) time.Duration {
	f()
	bestD := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < bestD {
			bestD = d
		}
	}
	return bestD
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
