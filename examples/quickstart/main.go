// Quickstart: generate a small TPC-H instance, run the same query on both
// engines, and verify they agree — the repository's core invariant.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"paradigms"
	"paradigms/internal/queries"
)

func main() {
	fmt.Println("Generating TPC-H at scale factor 0.1 ...")
	db := paradigms.GenerateTPCH(0.1, 0)
	fmt.Printf("lineitem: %d rows\n\n", db.Rel("lineitem").Rows())

	opts := paradigms.Options{Workers: 4}
	for _, query := range paradigms.Queries(db) {
		t0 := time.Now()
		compiled, err := paradigms.Run(db, paradigms.Typer, query, opts)
		if err != nil {
			log.Fatal(err)
		}
		typerTime := time.Since(t0)

		t0 = time.Now()
		vectorized, err := paradigms.Run(db, paradigms.Tectorwise, query, opts)
		if err != nil {
			log.Fatal(err)
		}
		twTime := time.Since(t0)

		agree := fmt.Sprint(compiled) == fmt.Sprint(vectorized)
		fmt.Printf("%-4s  typer %8.1fms   tectorwise %8.1fms   results agree: %v\n",
			query, ms(typerTime), ms(twTime), agree)
		if !agree {
			log.Fatalf("%s: engines disagree!", query)
		}
	}

	// Show one actual result: Q1's four aggregate groups.
	res, _ := paradigms.Run(db, paradigms.Typer, "Q1", opts)
	fmt.Println("\nTPC-H Q1 result (compiled engine):")
	for _, row := range res.(queries.Q1Result) {
		fmt.Printf("  %c%c  count=%8d  sum_qty=%14d  avg_disc=%.4f\n",
			row.ReturnFlag, row.LineStatus, row.Count, row.SumQty,
			float64(row.SumDiscnt)/float64(row.Count)/100)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
