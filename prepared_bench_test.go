package paradigms

// Prepared-statement benchmarks: what the plan cache buys. The adhoc
// variants pay parse → bind → optimize on every execution (the PR 3/4
// ad-hoc path); the prepared variants bind arguments into the cached
// plan and execute. planonly isolates the amortized cost itself.
// Numbers are recorded in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"paradigms/internal/compiled"
	"paradigms/internal/logical"
	"paradigms/internal/server"
)

// The Q6-class statement of the acceptance criterion: a parameterized
// selective scan with fixed-point arithmetic.
const benchParamQ6 = `select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= ? and l_shipdate < ?
  and l_discount between ? and ? and l_quantity < ?`

var benchQ6Args = []string{"1994-01-01", "1995-01-01", "0.05", "0.07", "24"}

// BenchmarkPreparedVsAdhoc compares cache-hit execution (bind+run of
// the cached parameterized plan) against uncached ad-hoc execution
// (parse+bind+plan+run of the literal text) on both backends, plus the
// isolated parse+bind+plan cost the cache amortizes away.
func BenchmarkPreparedVsAdhoc(b *testing.B) {
	db, _ := benchDBs2()
	ctx := context.Background()
	lit := `select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
  and l_discount between 0.05 and 0.07 and l_quantity < 24`

	pl, err := logical.Prepare(db, benchParamQ6)
	if err != nil {
		b.Fatal(err)
	}
	vals, err := pl.BindTexts(benchQ6Args)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("planonly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := logical.Prepare(db, lit); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tectorwise/adhoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := logical.Run(ctx, db, lit, 1, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tectorwise/prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pl.ExecuteArgs(ctx, 1, 0, vals); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("typer/adhoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Run(ctx, db, lit, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("typer/prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.ExecuteArgs(ctx, pl, 1, vals); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchDBs2 reuses the root SQL-test databases (SF 0.01) so the bench
// measures planning amortization on a realistic but quick instance.
func benchDBs2() (*DB, *DB) { return sqlDBs() }

// BenchmarkServicePreparedThroughput drives the full service closed-
// loop from 8 clients: the adhoc variant submits the literal SQL text
// (re-planned every execution), the prepared variant executes the
// cached statement with bound arguments, and the auto variant lets the
// per-statement router pick the backend. The spread is the serve-path
// cost of not having a plan cache.
func BenchmarkServicePreparedThroughput(b *testing.B) {
	db, ssb := benchDBs2()
	lit := `select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
  and l_discount between 0.05 and 0.07 and l_quantity < 24`

	const clients = 8
	run := func(b *testing.B, do func(ctx context.Context, svc *server.Service, p *server.Prepared, i int) error, prepare bool) {
		svc := NewService(db, ssb, ServiceOptions{})
		defer svc.Close()
		var p *server.Prepared
		if prepare {
			var err error
			if p, err = svc.Prepare(benchParamQ6); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		work := make(chan int)
		done := make(chan error, clients)
		for c := 0; c < clients; c++ {
			go func() {
				ctx := context.Background()
				for i := range work {
					if err := do(ctx, svc, p, i); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for i := 0; i < b.N; i++ {
			work <- i
		}
		close(work)
		for c := 0; c < clients; c++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}

	engines := []string{"typer", "tectorwise"}
	b.Run("adhoc", func(b *testing.B) {
		run(b, func(ctx context.Context, svc *server.Service, _ *server.Prepared, i int) error {
			_, err := svc.Do(ctx, engines[i%2], lit)
			return err
		}, false)
	})
	b.Run("prepared", func(b *testing.B) {
		run(b, func(ctx context.Context, svc *server.Service, p *server.Prepared, i int) error {
			_, err := svc.DoPrepared(ctx, engines[i%2], p, benchQ6Args...)
			return err
		}, true)
	})
	b.Run("prepared-auto", func(b *testing.B) {
		run(b, func(ctx context.Context, svc *server.Service, p *server.Prepared, i int) error {
			_, err := svc.DoPrepared(ctx, "auto", p, benchQ6Args...)
			return err
		}, true)
	})
}
